package bayesnet

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"prmsel/internal/factor"
	"prmsel/internal/faults"
	"prmsel/internal/obs"
)

// This file implements compiled query plans: the structural work of
// probability() — ancestral closure, evidence classification, elimination
// ordering, and the exact sequence of factor operations — depends only on
// the query *shape* (which variables carry equality vs. set evidence),
// never on the constants. A Plan captures that work once; executing it
// replays the identical floating-point operations through the
// allocation-free kernels in internal/factor, reading operands out of one
// pooled slab. Results are bit-for-bit equal to the uncompiled path.
//
// Plans live in a per-network LRU keyed by shape and are dropped whenever
// the structure or parameters change (SetParents/SetCPD); the core layer
// additionally discards whole networks on RefitParameters/hot-swap.

// defaultPlanCacheCap bounds the per-network plan LRU. Shapes are few —
// one per distinct (predicate set, ordering heuristic) — so this is
// generous; it exists to bound adversarial workloads, not normal ones.
const defaultPlanCacheCap = 256

// srcRef locates one operand table at execution time: a shared memoized
// CPD factor (index into Plan.shared) or a region of the pooled slab
// (index into Plan.regions). Exactly one index is >= 0.
type srcRef struct {
	shared int
	region int
}

// region is one slab-relative buffer a plan writes intermediates into.
// Regions with disjoint lifetimes share offsets (see regionAlloc).
type region struct {
	off, size int
}

// Prep-step kinds: the per-CPD evidence application that precedes
// elimination. pGather collapses every equality-evidence dimension of one
// factor into a single block copy (the fused form of the uncompiled path's
// Fix chain), pCopy materializes a shared factor into the slab so
// pRestrict can zero rejected rows in place (Restrict without the clone).
const (
	pGather = int8(iota)
	pCopy
	pRestrict
)

type prepStep struct {
	kind   int8
	u      int // pRestrict: evidence variable
	inner  int // pRestrict: stride below u's dimension in the current scope
	card   int
	src    srcRef
	dst    int // region index written (pRestrict: acted on in place)
	aux    int // pRestrict: index into Plan.restricted
	gather *gatherPlan
}

// gatherPlan is the compile-time residue of fusing a factor's Fix chain:
// the surviving elements form blocks of blockLen contiguous floats at
// evidence-independent source offsets blockOffs, shifted by the
// evidence-dependent base Σ value(u)·stride(u) over the fixed dimensions.
type gatherPlan struct {
	terms     []offsetTerm
	blockLen  int
	blockOffs []int
}

// scalarLookup is the all-dimensions-fixed fast path: a CPD factor whose
// entire scope carries equality evidence reduces to a single table read at
// offset Σ value(u)·stride(u), skipping every intermediate Fix.
type scalarLookup struct {
	shared int
	terms  []offsetTerm
}

type offsetTerm struct {
	u      int
	stride int
}

// Exec-step kinds: sBoundary re-checks the context between eliminated
// variables (matching the uncompiled loop), sProduct and sSumOut are the
// scheduled factor operations.
const (
	sBoundary = int8(iota)
	sProduct
	sSumOut
)

type execStep struct {
	kind     int8
	l, r     srcRef
	dst      int
	outCards []int
	lStride  []int
	rStride  []int
	width    int // product scope width, for budget admission
	cells    int // product table size, for budget admission
	inner    int // sSumOut
	card     int // sSumOut
}

// finalRef is one factor surviving elimination, in list order; the result
// is the product of their masses (scalar lookups contribute themselves).
type finalRef struct {
	scalar int // index into Plan.scalars, or -1
	ref    srcRef
}

// Plan is the compiled form of one query shape: the static factor-
// operation schedule probability() would perform, with every scope,
// stride map, dimension index, and buffer offset resolved at compile
// time. A Plan is immutable after compilation and safe for concurrent
// execution; each execution borrows a scratch slab from the plan's pool.
type Plan struct {
	shared     []*factor.Factor
	scalars    []scalarLookup
	preps      []prepStep
	steps      []execStep
	finals     []finalRef
	regions    []region
	restricted []int // variables carrying set evidence, in closure order
	slabFloats int
	odoWidth   int
	pool       *factor.Pool

	// Trace constants, mirroring the uncompiled path's span attributes.
	closure    int
	clamped    int
	eliminated int
	products   int
	maxCells   int
	ord        ElimOrder
}

// regionAlloc assigns slab regions during compilation, recycling a
// region's storage once the step consuming it has been emitted. Only
// exact-size reuse is attempted; elimination chains ping-pong between a
// handful of sizes, which this catches.
type regionAlloc struct {
	p    *Plan
	free map[int][]int // size -> reusable region indices
}

func (a *regionAlloc) get(size int) int {
	if ids := a.free[size]; len(ids) > 0 {
		id := ids[len(ids)-1]
		a.free[size] = ids[:len(ids)-1]
		return id
	}
	id := len(a.p.regions)
	a.p.regions = append(a.p.regions, region{off: a.p.slabFloats, size: size})
	a.p.slabFloats += size
	return id
}

// release recycles a region once its consumer step has been emitted;
// shared refs are never recycled.
func (a *regionAlloc) release(r srcRef) {
	if r.region < 0 {
		return
	}
	size := a.p.regions[r.region].size
	a.free[size] = append(a.free[size], r.region)
}

// planShapeKey renders the shape of an event — which variables carry
// equality ('=') vs. set ('~') evidence — plus the ordering heuristic.
// Constants are deliberately absent: all queries of one shape share a plan.
func planShapeKey(evt Event, ord ElimOrder) string {
	ids := make([]int, 0, len(evt))
	for v := range evt {
		ids = append(ids, v)
	}
	sort.Ints(ids)
	var b strings.Builder
	b.Grow(2 + len(ids)*8)
	b.WriteByte(byte('0' + int(ord)))
	var buf [20]byte
	for _, v := range ids {
		b.WriteByte(';')
		b.Write(strconv.AppendInt(buf[:0], int64(v), 10))
		if len(evt[v]) == 1 {
			b.WriteByte('=')
		} else {
			b.WriteByte('~')
		}
	}
	return b.String()
}

// planEntry is one cache slot; once gives concurrent misses on the same
// shape a single compilation (the losers wait and share the result). used
// is the entry's CLOCK reference bit: hits set it, the eviction hand
// clears it, entries found cleared are the victims.
type planEntry struct {
	key  string
	once sync.Once
	plan *Plan
	used atomic.Bool
}

// planCache holds a network's compiled plans. The hit path is lock-free:
// lookups read an immutable map through one atomic pointer load and bump
// atomic counters, so concurrent executions of cached shapes never
// serialize. Misses, capacity changes, and invalidation take mu, rebuild
// the map copy-on-write, and republish it; eviction is CLOCK
// (second-chance) over an insertion-ordered ring, which needs no
// move-to-front bookkeeping on hits — the property that makes the
// lock-free read map possible.
type planCache struct {
	hits   atomic.Uint64
	misses atomic.Uint64
	// read is the published lookup map. The map value is immutable;
	// writers copy, mutate the copy, and Store.
	read atomic.Pointer[map[string]*planEntry]

	mu       sync.Mutex
	capacity int
	ring     []*planEntry // CLOCK ring in insertion order; guarded by mu
	hand     int          // next eviction candidate; guarded by mu
}

func newPlanCache(capacity int) *planCache {
	c := &planCache{capacity: capacity}
	empty := make(map[string]*planEntry)
	c.read.Store(&empty)
	return c
}

// lookup returns the entry for key, creating it on miss, and reports
// whether it already existed. Hits touch no lock. Compilation happens
// outside the lock via the entry's once.
func (c *planCache) lookup(key string) (*planEntry, bool) {
	if e, ok := (*c.read.Load())[key]; ok {
		c.hits.Add(1)
		e.used.Store(true)
		return e, true
	}
	c.mu.Lock()
	cur := *c.read.Load()
	if e, ok := cur[key]; ok {
		// Lost a race with another miss on the same key.
		c.mu.Unlock()
		c.hits.Add(1)
		e.used.Store(true)
		return e, true
	}
	c.misses.Add(1)
	e := &planEntry{key: key}
	e.used.Store(true) // grace period: a brand-new plan survives one sweep
	next := make(map[string]*planEntry, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = e
	if len(c.ring) < c.capacity {
		c.ring = append(c.ring, e)
	} else {
		// CLOCK: clear reference bits until one is already clear; that
		// entry is replaced in place, keeping the ring at capacity.
		for {
			v := c.ring[c.hand]
			if !v.used.Swap(false) {
				delete(next, v.key)
				c.ring[c.hand] = e
				c.hand = (c.hand + 1) % len(c.ring)
				break
			}
			c.hand = (c.hand + 1) % len(c.ring)
		}
	}
	c.read.Store(&next)
	c.mu.Unlock()
	return e, false
}

// setCapacity retunes the cache bound, evicting down to it immediately
// with the same CLOCK sweep. capacity <= 0 restores the default.
func (c *planCache) setCapacity(capacity int) {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	if len(c.ring) <= capacity {
		return
	}
	cur := *c.read.Load()
	next := make(map[string]*planEntry, capacity)
	for k, v := range cur {
		next[k] = v
	}
	for len(c.ring) > capacity {
		v := c.ring[c.hand]
		if v.used.Swap(false) {
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(next, v.key)
		c.ring = append(c.ring[:c.hand], c.ring[c.hand+1:]...)
		if c.hand >= len(c.ring) && len(c.ring) > 0 {
			c.hand = 0
		}
	}
	c.read.Store(&next)
}

func (c *planCache) invalidate() {
	c.mu.Lock()
	empty := make(map[string]*planEntry)
	c.read.Store(&empty)
	c.ring = nil
	c.hand = 0
	c.mu.Unlock()
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Entries:  len(*c.read.Load()),
		Capacity: c.capacity,
	}
}

// PlanCacheStats reports the plan cache's effectiveness. Hits and misses
// are cumulative across invalidations; Entries is the current population.
type PlanCacheStats struct {
	Hits     uint64
	Misses   uint64
	Entries  int
	Capacity int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s PlanCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// PlanStats returns the network's plan-cache counters.
func (n *Network) PlanStats() PlanCacheStats { return n.plans.stats() }

// SetPlanCapacity retunes the plan LRU bound (brownout control shrinks
// it under memory pressure); <= 0 restores the default.
func (n *Network) SetPlanCapacity(capacity int) { n.plans.setCapacity(capacity) }

// InvalidatePlans drops every compiled plan. SetParents/SetCPD call this;
// callers that mutate CPDs in place must call it themselves.
func (n *Network) InvalidatePlans() {
	n.plans.invalidate()
}

// planFor returns the compiled plan for evt's shape, compiling on first
// use, and reports whether the cache already held it.
func (n *Network) planFor(evt Event, ord ElimOrder) (*Plan, bool) {
	e, hit := n.plans.lookup(planShapeKey(evt, ord))
	e.once.Do(func() { e.plan = n.compilePlan(evt, ord) })
	return e.plan, hit
}

// compilePlan builds the static schedule for evt's shape by symbolically
// executing the uncompiled path: the same closure, the same per-CPD
// evidence reduction (with each Fix chain fused into one gather — element
// selection and zeroing commute, so the fused data is byte-identical), the
// same elimination order, and the same left-fold product order inside
// eliminate(). Only shapes are consulted — never evt's values — so the
// plan serves every query of the shape, and the arithmetic performed is
// identical to the uncompiled path's, making results bit-for-bit equal.
func (n *Network) compilePlan(evt Event, ord ElimOrder) *Plan {
	closure := n.ancestralClosure(evt)
	fixedSet := make(map[int]bool, len(evt))
	restrictedIdx := make(map[int]int, len(evt))
	p := &Plan{closure: len(closure), ord: ord}
	for v, set := range evt {
		if len(set) == 1 {
			fixedSet[v] = true
		} else if _, ok := restrictedIdx[v]; !ok {
			restrictedIdx[v] = -1 // assigned in closure order below
		}
	}
	p.clamped = len(fixedSet)
	for _, v := range closure {
		if _, ok := restrictedIdx[v]; ok {
			restrictedIdx[v] = len(p.restricted)
			p.restricted = append(p.restricted, v)
		}
	}

	alloc := &regionAlloc{p: p, free: make(map[int][]int)}

	// symFactor tracks one factor of the working list through compilation:
	// its evolving scope and where its data will live at execution time.
	type symFactor struct {
		vars   []int
		cards  []int
		ref    srcRef
		scalar int
	}
	syms := make([]symFactor, 0, len(closure))
	for _, v := range closure {
		f := n.cpdFactor(v)
		sharedIdx := len(p.shared)
		p.shared = append(p.shared, f)

		allFixed := len(f.Vars) > 0
		for _, u := range f.Vars {
			if !fixedSet[u] {
				allFixed = false
				break
			}
		}
		if allFixed {
			// Every dimension clamps: the chain of Fixes the uncompiled
			// path performs composes to one direct table read.
			strides := factor.Strides(f.Card)
			sl := scalarLookup{shared: sharedIdx}
			for i, u := range f.Vars {
				sl.terms = append(sl.terms, offsetTerm{u: u, stride: strides[i]})
			}
			idx := len(p.scalars)
			p.scalars = append(p.scalars, sl)
			syms = append(syms, symFactor{ref: srcRef{shared: -1, region: -1}, scalar: idx})
			continue
		}

		curVars := append([]int(nil), f.Vars...)
		curCards := append([]int(nil), f.Card...)
		cur := srcRef{shared: sharedIdx, region: -1}

		nFixed := 0
		for _, u := range f.Vars {
			if fixedSet[u] {
				nFixed++
			}
		}
		if nFixed > 0 {
			// Fix is pure element selection and Restrict pure zeroing, so
			// they commute bitwise: the chain of per-dimension Fixes the
			// uncompiled path performs collapses into one gather — a single
			// copy of the surviving elements, with source offsets resolved
			// at compile time up to the evidence values.
			strides := factor.Strides(f.Card)
			g := &gatherPlan{blockLen: 1}
			remVars := make([]int, 0, len(f.Vars)-nFixed)
			remCards := make([]int, 0, len(f.Vars)-nFixed)
			remStrides := make([]int, 0, len(f.Vars)-nFixed)
			for i, u := range f.Vars {
				if fixedSet[u] {
					g.terms = append(g.terms, offsetTerm{u: u, stride: strides[i]})
				} else {
					remVars = append(remVars, u)
					remCards = append(remCards, f.Card[i])
					remStrides = append(remStrides, strides[i])
				}
			}
			// Blocks are maximal contiguous runs in the source: a remaining
			// dimension whose stride equals the run length so far extends
			// the run through its whole extent.
			j := 0
			for j < len(remCards) && remStrides[j] == g.blockLen {
				g.blockLen *= remCards[j]
				j++
			}
			outer := remCards[j:]
			nBlocks := 1
			for _, c := range outer {
				nBlocks *= c
			}
			g.blockOffs = make([]int, nBlocks)
			idx := make([]int, len(outer))
			off := 0
			for b := 0; b < nBlocks; b++ {
				g.blockOffs[b] = off
				for d := 0; d < len(outer); d++ {
					idx[d]++
					off += remStrides[j+d]
					if idx[d] < outer[d] {
						break
					}
					off -= remStrides[j+d] * outer[d]
					idx[d] = 0
				}
			}
			dst := alloc.get(g.blockLen * nBlocks)
			p.preps = append(p.preps, prepStep{kind: pGather, src: cur, dst: dst, gather: g})
			cur = srcRef{shared: -1, region: dst}
			curVars = remVars
			curCards = remCards
		}
		if ri, ok := restrictedIdx[v]; ok {
			// v carries set evidence (a variable is never both fixed and
			// restricted, so it survived any gather). Restrict mutates; a
			// still-shared factor is copied into the slab first (the
			// uncompiled path's Clone), while a gathered region is already
			// private.
			k := indexOfSorted(curVars, v)
			inner := 1
			for i := 0; i < k; i++ {
				inner *= curCards[i]
			}
			if cur.region < 0 {
				size := 1
				for _, c := range curCards {
					size *= c
				}
				dst := alloc.get(size)
				p.preps = append(p.preps, prepStep{kind: pCopy, src: cur, dst: dst})
				cur = srcRef{shared: -1, region: dst}
			}
			p.preps = append(p.preps, prepStep{kind: pRestrict, u: v, inner: inner, card: curCards[k], src: cur, dst: cur.region, aux: ri})
		}
		syms = append(syms, symFactor{vars: curVars, cards: curCards, ref: cur, scalar: -1})
	}

	// Elimination order over the post-prep scopes, exactly as the
	// uncompiled path computes it. minFillOrder reads only Vars/Card, so
	// data-free factor headers suffice.
	elim := make([]int, 0, len(closure))
	headers := make([]*factor.Factor, 0, len(syms))
	for _, v := range closure {
		if !fixedSet[v] {
			elim = append(elim, v)
		}
	}
	for _, s := range syms {
		headers = append(headers, &factor.Factor{Vars: s.vars, Card: s.cards})
	}
	order := n.eliminationOrder(elim, headers, ord)
	p.eliminated = len(order)

	// Symbolic eliminate(): same list order, same left-fold of products,
	// SumOut result appended at the end.
	for _, v := range order {
		p.steps = append(p.steps, execStep{kind: sBoundary})
		next := make([]symFactor, 0, len(syms))
		acc := symFactor{scalar: -1}
		haveAcc := false
		for _, f := range syms {
			if indexOfSorted(f.vars, v) < 0 {
				next = append(next, f)
				continue
			}
			if !haveAcc {
				acc, haveAcc = f, true
				continue
			}
			uVars, uCards := unionScope(acc.vars, acc.cards, f.vars, f.cards)
			cells := 1
			for _, c := range uCards {
				cells *= c
			}
			lS := factor.StrideInto(uVars, acc.vars, acc.cards)
			rS := factor.StrideInto(uVars, f.vars, f.cards)
			dst := alloc.get(cells)
			p.steps = append(p.steps, execStep{
				kind: sProduct, l: acc.ref, r: f.ref, dst: dst,
				outCards: uCards, lStride: lS, rStride: rS,
				width: len(uVars), cells: cells,
			})
			alloc.release(acc.ref)
			alloc.release(f.ref)
			acc = symFactor{vars: uVars, cards: uCards, ref: srcRef{shared: -1, region: dst}, scalar: -1}
			p.products++
			if cells > p.maxCells {
				p.maxCells = cells
			}
			if len(uVars) > p.odoWidth {
				p.odoWidth = len(uVars)
			}
		}
		if haveAcc {
			k := indexOfSorted(acc.vars, v)
			inner := 1
			for i := 0; i < k; i++ {
				inner *= acc.cards[i]
			}
			card := acc.cards[k]
			outVars := make([]int, 0, len(acc.vars)-1)
			outCards := make([]int, 0, len(acc.cards)-1)
			size := 1
			for i := range acc.vars {
				if i != k {
					outVars = append(outVars, acc.vars[i])
					outCards = append(outCards, acc.cards[i])
					size *= acc.cards[i]
				}
			}
			dst := alloc.get(size)
			p.steps = append(p.steps, execStep{kind: sSumOut, l: acc.ref, dst: dst, inner: inner, card: card})
			alloc.release(acc.ref)
			next = append(next, symFactor{vars: outVars, cards: outCards, ref: srcRef{shared: -1, region: dst}, scalar: -1})
		}
		syms = next
	}

	for _, f := range syms {
		p.finals = append(p.finals, finalRef{scalar: f.scalar, ref: f.ref})
	}
	p.pool = factor.NewPool(p.slabFloats, p.odoWidth)
	return p
}

// runPlan executes a compiled plan against one event's values. Budgeted
// runs pre-scan the schedule — every product's shape is a plan constant —
// so an over-budget query is refused before any work or allocation, with
// the same BudgetError and trace attributes the uncompiled guard produces.
func (n *Network) runPlan(ctx context.Context, plan *Plan, evt Event, budget Budget, hit bool) (float64, error) {
	_, sp := obs.Start(ctx, "infer")
	if err := faults.Inject("bayesnet.infer"); err != nil {
		sp.Set(obs.Str("injected", err.Error()))
		sp.End()
		return 0, err
	}
	if budget.Enabled() {
		ran := 0
		for i := range plan.steps {
			st := &plan.steps[i]
			if st.kind != sProduct {
				continue
			}
			if (budget.MaxCells > 0 && st.cells > budget.MaxCells) || (budget.MaxWidth > 0 && st.width > budget.MaxWidth) {
				err := &BudgetError{Cells: st.cells, MaxCells: budget.MaxCells, Width: st.width, MaxWidth: budget.MaxWidth}
				sp.Set(obs.Str("refused", err.Error()), obs.Int("max_cells", ran))
				sp.End()
				return 0, err
			}
			if st.cells > ran {
				ran = st.cells
			}
		}
	}

	var accepts []map[int32]bool
	if len(plan.restricted) > 0 {
		accepts = make([]map[int32]bool, len(plan.restricted))
		for i, u := range plan.restricted {
			accept := make(map[int32]bool, len(evt[u]))
			for _, val := range evt[u] {
				accept[val] = true
			}
			accepts[i] = accept
		}
	}

	var sc *factor.Scratch
	if plan.slabFloats > 0 || plan.odoWidth > 0 {
		sc = plan.pool.Get()
		defer plan.pool.Put(sc)
	}
	data := func(r srcRef) []float64 {
		if r.shared >= 0 {
			return plan.shared[r.shared].Data
		}
		reg := plan.regions[r.region]
		return sc.Slab[reg.off : reg.off+reg.size]
	}
	regionData := func(id int) []float64 {
		reg := plan.regions[id]
		return sc.Slab[reg.off : reg.off+reg.size]
	}

	for i := range plan.preps {
		st := &plan.preps[i]
		switch st.kind {
		case pGather:
			g := st.gather
			base := 0
			for _, t := range g.terms {
				base += int(evt[t.u][0]) * t.stride
			}
			factor.GatherInto(regionData(st.dst), data(st.src), base, g.blockLen, g.blockOffs)
		case pCopy:
			copy(regionData(st.dst), data(st.src))
		case pRestrict:
			factor.RestrictInPlace(regionData(st.dst), st.inner, st.card, accepts[st.aux])
		}
	}

	for i := range plan.steps {
		st := &plan.steps[i]
		switch st.kind {
		case sBoundary:
			if err := ctx.Err(); err != nil {
				sp.Set(obs.Str("interrupted", err.Error()))
				sp.End()
				return 0, fmt.Errorf("bayesnet: inference interrupted: %w", err)
			}
		case sProduct:
			if budget.Enabled() {
				if err := ctx.Err(); err != nil {
					werr := fmt.Errorf("bayesnet: inference interrupted: %w", err)
					sp.Set(obs.Str("refused", werr.Error()), obs.Int("max_cells", plan.maxCells))
					sp.End()
					return 0, werr
				}
			}
			factor.ProductInto(regionData(st.dst), st.outCards, data(st.l), data(st.r), st.lStride, st.rStride, sc.Odo)
		case sSumOut:
			factor.SumOutInto(regionData(st.dst), data(st.l), st.inner, st.card)
		}
	}

	p := 1.0
	for _, fr := range plan.finals {
		if fr.scalar >= 0 {
			sl := &plan.scalars[fr.scalar]
			off := 0
			for _, t := range sl.terms {
				off += int(evt[t.u][0]) * t.stride
			}
			p *= plan.shared[sl.shared].Data[off]
		} else {
			var sum float64
			for _, x := range data(fr.ref) {
				sum += x
			}
			p *= sum
		}
	}
	if sp != nil {
		sp.Set(
			obs.Int("closure", plan.closure),
			obs.Int("clamped", plan.clamped),
			obs.Int("eliminated", plan.eliminated),
			obs.Int("products", plan.products),
			obs.Int("max_cells", plan.maxCells),
			obs.Str("order", plan.ord.String()),
			obs.Bool("plan_hit", hit),
		)
		sp.End()
	}
	return p, nil
}

// indexOfSorted returns the position of v in the sorted slice vars, or -1.
func indexOfSorted(vars []int, v int) int {
	for i, x := range vars {
		if x == v {
			return i
		}
		if x > v {
			return -1
		}
	}
	return -1
}

// unionScope merges two sorted scopes, panicking on cardinality mismatch
// exactly like Product.
func unionScope(aVars, aCards, bVars, bCards []int) ([]int, []int) {
	vars := make([]int, 0, len(aVars)+len(bVars))
	cards := make([]int, 0, len(aVars)+len(bVars))
	i, j := 0, 0
	for i < len(aVars) || j < len(bVars) {
		switch {
		case j >= len(bVars) || (i < len(aVars) && aVars[i] < bVars[j]):
			vars = append(vars, aVars[i])
			cards = append(cards, aCards[i])
			i++
		case i >= len(aVars) || bVars[j] < aVars[i]:
			vars = append(vars, bVars[j])
			cards = append(cards, bCards[j])
			j++
		default:
			if aCards[i] != bCards[j] {
				panic(fmt.Sprintf("bayesnet: var %d has card %d in one factor, %d in the other", aVars[i], aCards[i], bCards[j]))
			}
			vars = append(vars, aVars[i])
			cards = append(cards, aCards[i])
			i++
			j++
		}
	}
	return vars, cards
}
