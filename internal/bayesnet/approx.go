package bayesnet

import (
	"context"
	"fmt"
	"math/rand"

	"prmsel/internal/faults"
	"prmsel/internal/obs"
)

// LikelihoodWeighting estimates P(evt) by importance sampling: ancestral
// sampling where event variables are not sampled but clamped, with each
// particle weighted by the probability of the clamping. It is the
// approximate fallback for networks whose exact inference is intractable
// (BN inference is NP-hard in general, paper §2.3; the junction tree
// compiler rejects huge cliques and even variable elimination can blow up
// on dense structures).
//
// For multi-value (range) evidence the sampler draws the variable from its
// conditional restricted to the accepted set and weights by the accepted
// mass. The estimator is unbiased; its variance shrinks as O(1/samples).
func (n *Network) LikelihoodWeighting(evt Event, samples int, rng *rand.Rand) (float64, error) {
	return n.LikelihoodWeightingCtx(context.Background(), evt, samples, rng)
}

// LikelihoodWeightingCtx is LikelihoodWeighting under a context: a
// span-carrying context records the sampling as an "approx" span, and
// cancellation stops the particle loop between batches. This is the
// entry point of the graceful-degradation chain — the tier that answers
// when exact elimination refuses its resource budget.
func (n *Network) LikelihoodWeightingCtx(ctx context.Context, evt Event, samples int, rng *rand.Rand) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("bayesnet: need a positive sample count, got %d", samples)
	}
	accept := make(map[int]map[int32]bool, len(evt))
	for v, set := range evt {
		if v < 0 || v >= len(n.vars) {
			return 0, fmt.Errorf("bayesnet: event references unknown variable %d", v)
		}
		if len(set) == 0 {
			return 0, fmt.Errorf("bayesnet: event on %s has empty value set", n.vars[v].Name)
		}
		m := make(map[int32]bool, len(set))
		for _, val := range set {
			if val < 0 || int(val) >= n.vars[v].Card {
				return 0, fmt.Errorf("bayesnet: event value %d out of domain for %s", val, n.vars[v].Name)
			}
			m[val] = true
		}
		accept[v] = m
	}
	order, err := n.TopoOrder()
	if err != nil {
		return 0, err
	}
	_, sp := obs.Start(ctx, "approx")
	if err := faults.Inject("bayesnet.approx"); err != nil {
		sp.Set(obs.Str("injected", err.Error()))
		sp.End()
		return 0, err
	}

	assignment := make([]int32, len(n.vars))
	var total float64
	for s := 0; s < samples; s++ {
		// A cancelled caller stops between batches; each particle is a
		// cheap O(#vars) walk, so checking every 64th keeps the poll cost
		// invisible while still bounding overrun.
		if s%64 == 0 {
			if err := ctx.Err(); err != nil {
				sp.Set(obs.Str("interrupted", err.Error()))
				sp.End()
				return 0, fmt.Errorf("bayesnet: sampling interrupted: %w", err)
			}
		}
		weight := 1.0
		for _, v := range order {
			pvals := make([]int32, len(n.parents[v]))
			for i, q := range n.parents[v] {
				pvals[i] = assignment[q]
			}
			set, observed := accept[v]
			if !observed {
				assignment[v] = n.sampleVar(v, pvals, nil, rng)
				continue
			}
			// Clamp: weight by the accepted mass, then draw within it so
			// descendants see a consistent configuration.
			var mass float64
			for val := range set {
				mass += n.cpds[v].Prob(val, pvals)
			}
			weight *= mass
			if mass <= 0 {
				break // this particle contributes zero
			}
			assignment[v] = n.sampleVar(v, pvals, set, rng)
		}
		total += weight
	}
	if sp != nil {
		sp.Set(obs.Int("samples", samples))
		sp.End()
	}
	return total / float64(samples), nil
}

// sampleVar draws a value for v given parent values, optionally restricted
// to an accept set (renormalized).
func (n *Network) sampleVar(v int, pvals []int32, accept map[int32]bool, rng *rand.Rand) int32 {
	var mass float64
	if accept == nil {
		mass = 1
	} else {
		for val := range accept {
			mass += n.cpds[v].Prob(val, pvals)
		}
		if mass <= 0 {
			// Degenerate: fall back to any accepted value.
			for val := range accept {
				return val
			}
		}
	}
	u := rng.Float64() * mass
	var cum float64
	last := int32(n.vars[v].Card - 1)
	for x := 0; x < n.vars[v].Card; x++ {
		val := int32(x)
		if accept != nil && !accept[val] {
			continue
		}
		last = val
		cum += n.cpds[v].Prob(val, pvals)
		if u < cum {
			return val
		}
	}
	return last
}
