package bayesnet

import (
	"bytes"
	"math"
	"testing"
)

// binTree builds a tree CPD over two parents (cards 4 and 3) using both
// binary split kinds: root OpLE on parent 0, one branch OpEQ on parent 1.
func binTree() *TreeCPD {
	return &TreeCPD{
		ChildCard:   2,
		ParentCards: []int{4, 3},
		Root: &TreeNode{
			Split: 0, Op: OpLE, Arg: 1,
			Children: []*TreeNode{
				{Dist: []float64{0.9, 0.1}}, // parent0 <= 1
				{ // parent0 > 1: split on parent1 == 2
					Split: 1, Op: OpEQ, Arg: 2,
					Children: []*TreeNode{
						{Dist: []float64{0.2, 0.8}},
						{Dist: []float64{0.5, 0.5}},
					},
				},
			},
		},
	}
}

func TestBinarySplitRouting(t *testing.T) {
	tree := binTree()
	cases := []struct {
		p0, p1 int32
		want   float64 // P(child=0)
	}{
		{0, 0, 0.9}, {1, 2, 0.9}, // ≤ branch regardless of p1
		{2, 2, 0.2}, {3, 2, 0.2}, // > branch, p1 == 2
		{2, 0, 0.5}, {3, 1, 0.5}, // > branch, p1 != 2
	}
	for _, c := range cases {
		if got := tree.Prob(0, []int32{c.p0, c.p1}); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(0 | %d,%d) = %v, want %v", c.p0, c.p1, got, c.want)
		}
	}
}

func TestBinarySplitFactorAgreesWithProb(t *testing.T) {
	tree := binTree()
	f := tree.Factor(0, []int{1, 2}, 2, []int{4, 3})
	for p0 := int32(0); p0 < 4; p0++ {
		for p1 := int32(0); p1 < 3; p1++ {
			for x := int32(0); x < 2; x++ {
				want := tree.Prob(x, []int32{p0, p1})
				got := f.At([]int32{x, p0, p1})
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("factor(%d|%d,%d) = %v, want %v", x, p0, p1, got, want)
				}
			}
		}
	}
}

func TestBinarySplitStorageAccounting(t *testing.T) {
	tree := binTree()
	// 3 leaves × (2−1) params × 4B + 2 interior × 4B = 12 + 8 = 20.
	if got := tree.StorageBytes(); got != 20 {
		t.Errorf("StorageBytes = %d, want 20", got)
	}
	if got := tree.NumParams(); got != 3 {
		t.Errorf("NumParams = %d, want 3", got)
	}
}

func TestBinarySplitValidateChecks(t *testing.T) {
	net := New([]Variable{{Name: "P0", Card: 4}, {Name: "P1", Card: 3}, {Name: "X", Card: 2}})
	net.SetCPD(0, NewTableCPD(4, nil))
	net.SetCPD(1, NewTableCPD(3, nil))
	net.SetParents(2, []int{0, 1})
	net.SetCPD(2, binTree())
	if err := net.Validate(); err != nil {
		t.Fatalf("valid binary tree rejected: %v", err)
	}
	// Out-of-domain split operand.
	bad := binTree()
	bad.Root.Arg = 9
	net.SetCPD(2, bad)
	if err := net.Validate(); err == nil {
		t.Error("out-of-domain operand accepted")
	}
	// Wrong branch count for a binary split.
	bad2 := binTree()
	bad2.Root.Children = bad2.Root.Children[:1]
	net.SetCPD(2, bad2)
	if err := net.Validate(); err == nil {
		t.Error("one-branch binary split accepted")
	}
}

func TestCodecRoundTripsBinarySplits(t *testing.T) {
	net := New([]Variable{{Name: "P0", Card: 4}, {Name: "P1", Card: 3}, {Name: "X", Card: 2}})
	net.SetCPD(0, NewTableCPD(4, nil))
	net.SetCPD(1, NewTableCPD(3, nil))
	net.SetParents(2, []int{0, 1})
	net.SetCPD(2, binTree())
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tree := back.CPD(2).(*TreeCPD)
	for p0 := int32(0); p0 < 4; p0++ {
		for p1 := int32(0); p1 < 3; p1++ {
			a := binTree().Prob(0, []int32{p0, p1})
			b := tree.Prob(0, []int32{p0, p1})
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("decoded tree differs at (%d,%d)", p0, p1)
			}
		}
	}
}

func TestMarginal(t *testing.T) {
	net := fig1Net(t)
	// Marginal over Income must match Fig 1(c): 0.47, 0.30, 0.23.
	m, err := net.Marginal([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.47, 0.30, 0.23}
	for i, w := range want {
		if math.Abs(m.At([]int32{int32(i)})-w) > 1e-12 {
			t.Errorf("P(I=%d) = %v, want %v", i, m.At([]int32{int32(i)}), w)
		}
	}
	// Joint marginal over (Education, HomeOwner): compare against the full
	// joint summed over Income.
	m2, err := net.Marginal([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	joint := net.JointFactor()
	for e := int32(0); e < 3; e++ {
		for h := int32(0); h < 2; h++ {
			var want float64
			for i := int32(0); i < 3; i++ {
				want += joint.At([]int32{e, i, h})
			}
			if got := m2.At([]int32{e, h}); math.Abs(got-want) > 1e-12 {
				t.Errorf("P(E=%d,H=%d) = %v, want %v", e, h, got, want)
			}
		}
	}
}

func TestProbabilityMixedFixAndRange(t *testing.T) {
	// One equality (Fix path) plus one multi-value (Restrict path) in the
	// same event.
	net := fig1Net(t)
	// P(E=h, I ∈ {m,h}) = .105+.045+.005+.045 = 0.2
	p, err := net.Probability(Event{0: {0}, 1: {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.2) > 1e-12 {
		t.Errorf("P = %v, want 0.2", p)
	}
}
