package bayesnet

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// netDTO is the wire form of a Network.
type netDTO struct {
	Vars    []Variable
	Parents [][]int
	Tables  map[int]*TableCPD
	Trees   map[int]*TreeCPD
}

// Encode writes the network to w in gob form. Only Table and Tree CPDs are
// supported (the two kinds the system produces).
func (n *Network) Encode(w io.Writer) error {
	dto := netDTO{
		Vars:    n.vars,
		Parents: n.parents,
		Tables:  make(map[int]*TableCPD),
		Trees:   make(map[int]*TreeCPD),
	}
	for v, c := range n.cpds {
		switch c := c.(type) {
		case *TableCPD:
			dto.Tables[v] = c
		case *TreeCPD:
			dto.Trees[v] = c
		case nil:
			return fmt.Errorf("bayesnet: encode: variable %s has no CPD", n.vars[v].Name)
		default:
			return fmt.Errorf("bayesnet: encode: unsupported CPD kind %q", c.Kind())
		}
	}
	return gob.NewEncoder(w).Encode(dto)
}

// maxDecodeCard bounds a decoded variable's cardinality: domains in this
// system are value codes over small categorical attributes, so anything
// enormous is a corrupt or adversarial stream, and admitting it would let
// later inference materialize factors of that size.
const maxDecodeCard = 1 << 20

// Decode reads a network previously written by Encode. Every structural
// invariant later inference assumes is checked here — cardinalities,
// parent ids, DAG acyclicity, CPD shapes, and distribution normalization —
// so a corrupt or adversarial gob stream yields an error, never a panic or
// a model that panics later.
func Decode(r io.Reader) (*Network, error) {
	var dto netDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("bayesnet: decode: %w", err)
	}
	if err := dto.validate(); err != nil {
		return nil, fmt.Errorf("bayesnet: decode: %w", err)
	}
	n := New(dto.Vars)
	for v, ps := range dto.Parents {
		n.SetParents(v, ps)
	}
	for v, c := range dto.Tables {
		n.SetCPD(v, c)
	}
	for v, c := range dto.Trees {
		n.SetCPD(v, c)
	}
	// Validate covers acyclicity and CPD shape agreement; validate above
	// already ensured its inputs are in range, so it cannot panic.
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("bayesnet: decode: %w", err)
	}
	for v := range dto.Vars {
		var c CPD
		if t, ok := dto.Tables[v]; ok {
			c = t
		} else {
			c = dto.Trees[v]
		}
		if err := checkDistributions(c); err != nil {
			return nil, fmt.Errorf("bayesnet: decode: variable %s: %w", dto.Vars[v].Name, err)
		}
	}
	return n, nil
}

// validate checks the raw decoded DTO before any of it is handed to
// Network construction — index-shaped fields must be proven in range here
// because SetParents/Validate index with them unchecked.
func (d *netDTO) validate() error {
	nv := len(d.Vars)
	for v, vr := range d.Vars {
		if vr.Card <= 0 {
			return fmt.Errorf("variable %d (%s) has non-positive cardinality %d", v, vr.Name, vr.Card)
		}
		if vr.Card > maxDecodeCard {
			return fmt.Errorf("variable %d (%s) has implausible cardinality %d", v, vr.Name, vr.Card)
		}
	}
	if len(d.Parents) > nv {
		return fmt.Errorf("parent sets for %d variables, want at most %d", len(d.Parents), nv)
	}
	for v, ps := range d.Parents {
		seen := make(map[int]bool, len(ps))
		for _, p := range ps {
			if p < 0 || p >= nv {
				return fmt.Errorf("variable %d has out-of-range parent %d", v, p)
			}
			if p == v {
				return fmt.Errorf("variable %d is its own parent", v)
			}
			if seen[p] {
				return fmt.Errorf("variable %d has duplicate parent %d", v, p)
			}
			seen[p] = true
		}
	}
	for v, c := range d.Tables {
		if v < 0 || v >= nv {
			return fmt.Errorf("table CPD for out-of-range variable %d", v)
		}
		if c == nil {
			return fmt.Errorf("nil table CPD for variable %d", v)
		}
		if _, dup := d.Trees[v]; dup {
			return fmt.Errorf("variable %d has both a table and a tree CPD", v)
		}
	}
	for v, c := range d.Trees {
		if v < 0 || v >= nv {
			return fmt.Errorf("tree CPD for out-of-range variable %d", v)
		}
		if c == nil || c.Root == nil {
			return fmt.Errorf("nil tree CPD for variable %d", v)
		}
		if err := checkTreeWellFormed(c.Root, 0); err != nil {
			return fmt.Errorf("variable %d: %w", v, err)
		}
	}
	return nil
}

// checkTreeWellFormed rejects tree shapes Walk/check would crash on before
// they run: nil children and interior vertices with no branches. Depth is
// bounded so a cyclic (self-referential) gob graph cannot recurse forever.
func checkTreeWellFormed(n *TreeNode, depth int) error {
	if depth > 64 {
		return fmt.Errorf("tree CPD deeper than 64 levels")
	}
	if n.Dist != nil {
		return nil
	}
	if len(n.Children) == 0 {
		return fmt.Errorf("tree CPD interior vertex has no children")
	}
	for _, c := range n.Children {
		if c == nil {
			return fmt.Errorf("tree CPD has a nil child")
		}
		if err := checkTreeWellFormed(c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// checkDistributions verifies every stored distribution is a probability
// distribution: entries finite, non-negative, and summing to 1 within
// tolerance. Inference quietly produces garbage (or non-finite estimates)
// on violations, so a decoded model must prove this once up front.
func checkDistributions(c CPD) error {
	switch c := c.(type) {
	case *TableCPD:
		if c.ChildCard <= 0 {
			return fmt.Errorf("table CPD child cardinality %d", c.ChildCard)
		}
		for base := 0; base+c.ChildCard <= len(c.Dist); base += c.ChildCard {
			if err := checkDist(c.Dist[base : base+c.ChildCard]); err != nil {
				return err
			}
		}
	case *TreeCPD:
		var err error
		c.Walk(func(n *TreeNode) {
			if err == nil && n.IsLeaf() {
				err = checkDist(n.Dist)
			}
		})
		return err
	}
	return nil
}

// distTolerance is the allowed |sum-1| of a stored distribution: loose
// enough for float accumulation across learning and encoding, tight enough
// to catch rows that were never normalized.
const distTolerance = 1e-6

func checkDist(dist []float64) error {
	var sum float64
	for _, p := range dist {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return fmt.Errorf("distribution entry %v is not a probability", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > distTolerance {
		return fmt.Errorf("distribution sums to %v, want 1", sum)
	}
	return nil
}
