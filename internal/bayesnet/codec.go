package bayesnet

import (
	"encoding/gob"
	"fmt"
	"io"
)

// netDTO is the wire form of a Network.
type netDTO struct {
	Vars    []Variable
	Parents [][]int
	Tables  map[int]*TableCPD
	Trees   map[int]*TreeCPD
}

// Encode writes the network to w in gob form. Only Table and Tree CPDs are
// supported (the two kinds the system produces).
func (n *Network) Encode(w io.Writer) error {
	dto := netDTO{
		Vars:    n.vars,
		Parents: n.parents,
		Tables:  make(map[int]*TableCPD),
		Trees:   make(map[int]*TreeCPD),
	}
	for v, c := range n.cpds {
		switch c := c.(type) {
		case *TableCPD:
			dto.Tables[v] = c
		case *TreeCPD:
			dto.Trees[v] = c
		case nil:
			return fmt.Errorf("bayesnet: encode: variable %s has no CPD", n.vars[v].Name)
		default:
			return fmt.Errorf("bayesnet: encode: unsupported CPD kind %q", c.Kind())
		}
	}
	return gob.NewEncoder(w).Encode(dto)
}

// Decode reads a network previously written by Encode.
func Decode(r io.Reader) (*Network, error) {
	var dto netDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("bayesnet: decode: %w", err)
	}
	n := New(dto.Vars)
	for v, ps := range dto.Parents {
		n.SetParents(v, ps)
	}
	for v, c := range dto.Tables {
		n.SetCPD(v, c)
	}
	for v, c := range dto.Trees {
		n.SetCPD(v, c)
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("bayesnet: decode: %w", err)
	}
	return n, nil
}
