package bayesnet

import (
	"sync"
	"testing"
)

// TestConcurrentInference fires goroutines at one network's two inference
// engines at once. The first Probability call materializes memoized CPD
// factors, so starting all goroutines together exercises the memoization
// under contention; under -race this is the regression test for the
// inference read path (variable elimination and the junction tree must not
// share mutable scratch between concurrent queries).
func TestConcurrentInference(t *testing.T) {
	net := fig1Net(t)
	jt, err := net.CompileJunctionTree()
	if err != nil {
		t.Fatal(err)
	}

	events := []Event{
		{0: []int32{0}},
		{0: []int32{1}, 1: []int32{0, 1}},
		{1: []int32{2}, 2: []int32{1}},
		{0: []int32{0, 1}, 2: []int32{0}},
	}
	want := make([]float64, len(events))
	for i, evt := range events {
		p, err := net.Probability(evt)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				i := (g + r) % len(events)
				pv, err := net.Probability(events[i])
				if err != nil {
					errs <- err
					return
				}
				pj, err := jt.Probability(events[i])
				if err != nil {
					errs <- err
					return
				}
				if pv != want[i] || !approxEq(pj, want[i]) {
					t.Errorf("goroutine %d event %d: VE %v, JT %v, want %v", g, i, pv, pj, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}
