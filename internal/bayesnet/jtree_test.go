package bayesnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestJunctionTreeMatchesVariableElimination(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomNet(rng, 2+rng.Intn(5))
		jt, err := net.CompileJunctionTree()
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		evt := Event{}
		for v := 0; v < net.NumVars(); v++ {
			if rng.Intn(2) == 0 {
				continue
			}
			var set []int32
			for x := 0; x < net.Var(v).Card; x++ {
				if rng.Intn(2) == 0 {
					set = append(set, int32(x))
				}
			}
			if len(set) == 0 {
				set = []int32{0}
			}
			evt[v] = set
		}
		ve, err := net.Probability(evt)
		if err != nil {
			return false
		}
		jp, err := jt.Probability(evt)
		if err != nil {
			t.Logf("seed %d: jt: %v", seed, err)
			return false
		}
		if math.Abs(ve-jp) > 1e-9 {
			t.Logf("seed %d: VE %v vs JT %v", seed, ve, jp)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestJunctionTreeFig1(t *testing.T) {
	net := fig1Net(t)
	jt, err := net.CompileJunctionTree()
	if err != nil {
		t.Fatal(err)
	}
	// A chain E→I→H triangulates into two 2-cliques.
	if jt.NumCliques() != 2 {
		t.Errorf("cliques = %d, want 2", jt.NumCliques())
	}
	if jt.MaxCliqueSize() != 2 {
		t.Errorf("max clique = %d, want 2", jt.MaxCliqueSize())
	}
	p, err := jt.Probability(Event{0: {0}, 1: {0}, 2: {0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.27) > 1e-12 {
		t.Errorf("P = %v, want 0.27", p)
	}
	// Range event.
	p, err = jt.Probability(Event{1: {1, 2}, 2: {1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.297) > 1e-12 {
		t.Errorf("range P = %v, want 0.297", p)
	}
}

func TestJunctionTreeEmptyEventAndErrors(t *testing.T) {
	net := fig1Net(t)
	jt, err := net.CompileJunctionTree()
	if err != nil {
		t.Fatal(err)
	}
	p, err := jt.Probability(Event{})
	if err != nil || p != 1 {
		t.Errorf("P(∅) = %v, %v", p, err)
	}
	if _, err := jt.Probability(Event{9: {0}}); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := jt.Probability(Event{0: {}}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := jt.Probability(Event{0: {7}}); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

func TestJunctionTreeDisconnectedNetwork(t *testing.T) {
	// Two independent variables: P(A=0, B=1) = P(A=0)·P(B=1).
	net := New([]Variable{{Name: "A", Card: 2}, {Name: "B", Card: 3}})
	a := NewTableCPD(2, nil)
	copy(a.Dist, []float64{0.3, 0.7})
	b := NewTableCPD(3, nil)
	copy(b.Dist, []float64{0.2, 0.5, 0.3})
	net.SetCPD(0, a)
	net.SetCPD(1, b)
	jt, err := net.CompileJunctionTree()
	if err != nil {
		t.Fatal(err)
	}
	p, err := jt.Probability(Event{0: {0}, 1: {1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.15) > 1e-12 {
		t.Errorf("P = %v, want 0.15", p)
	}
}

func TestCompileRejectsInvalidNetwork(t *testing.T) {
	net := New([]Variable{{Name: "A", Card: 2}})
	if _, err := net.CompileJunctionTree(); err == nil {
		t.Error("network without CPDs compiled")
	}
}

func TestCompileRejectsHugeCliques(t *testing.T) {
	// A star network: one child with many wide parents triangulates into a
	// single clique whose potential would exceed the cell guard.
	vars := []Variable{{Name: "X", Card: 40}}
	for i := 0; i < 6; i++ {
		vars = append(vars, Variable{Name: string(rune('A' + i)), Card: 40})
	}
	net := New(vars)
	parents := make([]int, 6)
	for i := range parents {
		parents[i] = i + 1
		net.SetCPD(i+1, NewTableCPD(40, nil))
	}
	net.SetParents(0, parents)
	// A single-leaf tree CPD keeps the *model* tiny; only the junction
	// tree's clique potential would blow up.
	net.SetCPD(0, NewTreeCPD(40, net.ParentCards(0)))
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.CompileJunctionTree(); err == nil {
		t.Error("40^7-cell clique compiled without error")
	}
}
