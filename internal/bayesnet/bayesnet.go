// Package bayesnet implements Bayesian networks over discrete variables:
// the DAG structure, table- and tree-structured conditional probability
// distributions (CPDs), storage-size accounting, exact inference by
// variable elimination, and ancestral sampling.
//
// In the selectivity-estimation setting (Getoor, Taskar & Koller, SIGMOD
// 2001) a network approximates the joint frequency distribution over the
// value attributes of one table; the probability of a select query's event
// times the table size estimates the query's result size.
package bayesnet

import (
	"fmt"
	"math/rand"
	"sync"

	"prmsel/internal/factor"
)

// Variable is one node of the network.
type Variable struct {
	Name string
	Card int
}

// Network is a Bayesian network: variables, parent sets, and one CPD per
// variable. Construct with New and wire with SetParents/SetCPD, then call
// Validate (or use the learn package, which produces valid networks).
type Network struct {
	vars    []Variable
	parents [][]int
	cpds    []CPD
	// factors lazily memoizes cpdFactor: materializing a tree CPD walks
	// every configuration, which would dominate repeated inference.
	// SetParents/SetCPD invalidate the affected entry; mu makes the
	// memoization safe under concurrent inference.
	factors []*factor.Factor
	mu      sync.Mutex
	// plans caches compiled query plans by shape (see plan.go); it is
	// dropped whenever structure or parameters change, since plans capture
	// resolved CPD factors.
	plans *planCache
}

// New returns a network over the given variables with no edges and nil
// CPDs.
func New(vars []Variable) *Network {
	n := &Network{
		vars:    append([]Variable(nil), vars...),
		parents: make([][]int, len(vars)),
		cpds:    make([]CPD, len(vars)),
		factors: make([]*factor.Factor, len(vars)),
		plans:   newPlanCache(defaultPlanCacheCap),
	}
	return n
}

// NumVars returns the number of variables.
func (n *Network) NumVars() int { return len(n.vars) }

// Var returns variable metadata for id v.
func (n *Network) Var(v int) Variable { return n.vars[v] }

// VarByName returns the id of the named variable, or -1.
func (n *Network) VarByName(name string) int {
	for i, v := range n.vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Parents returns the parent ids of v (do not mutate).
func (n *Network) Parents(v int) []int { return n.parents[v] }

// SetParents replaces v's parent set.
func (n *Network) SetParents(v int, parents []int) {
	n.parents[v] = append([]int(nil), parents...)
	n.mu.Lock()
	n.factors[v] = nil
	n.mu.Unlock()
	n.plans.invalidate()
}

// CPD returns v's conditional probability distribution.
func (n *Network) CPD(v int) CPD { return n.cpds[v] }

// SetCPD installs v's CPD.
func (n *Network) SetCPD(v int, c CPD) {
	n.cpds[v] = c
	n.mu.Lock()
	n.factors[v] = nil
	n.mu.Unlock()
	n.plans.invalidate()
}

// ParentCards returns the cardinalities of v's parents, aligned with
// Parents(v).
func (n *Network) ParentCards(v int) []int {
	ps := n.parents[v]
	cards := make([]int, len(ps))
	for i, p := range ps {
		cards[i] = n.vars[p].Card
	}
	return cards
}

// TopoOrder returns a topological order of the variables, or an error if
// the parent structure is cyclic.
func (n *Network) TopoOrder() ([]int, error) {
	indeg := make([]int, len(n.vars))
	children := make([][]int, len(n.vars))
	for v, ps := range n.parents {
		indeg[v] = len(ps)
		for _, p := range ps {
			children[p] = append(children[p], v)
		}
	}
	var queue, out []int
	for v := range n.vars {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, c := range children[v] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(n.vars) {
		return nil, fmt.Errorf("bayesnet: dependency structure is cyclic")
	}
	return out, nil
}

// Validate checks acyclicity and that every variable has a CPD of the right
// shape.
func (n *Network) Validate() error {
	if _, err := n.TopoOrder(); err != nil {
		return err
	}
	for v := range n.vars {
		if n.cpds[v] == nil {
			return fmt.Errorf("bayesnet: variable %s has no CPD", n.vars[v].Name)
		}
		if err := n.cpds[v].check(n.vars[v].Card, n.ParentCards(v)); err != nil {
			return fmt.Errorf("bayesnet: variable %s: %w", n.vars[v].Name, err)
		}
	}
	return nil
}

// NumParams returns the total number of free parameters across all CPDs.
func (n *Network) NumParams() int {
	total := 0
	for _, c := range n.cpds {
		if c != nil {
			total += c.NumParams()
		}
	}
	return total
}

// StorageBytes returns the model's storage cost under the accounting used
// throughout the evaluation (see SizeAccounting).
func (n *Network) StorageBytes() int {
	total := 0
	for v, c := range n.cpds {
		if c != nil {
			total += c.StorageBytes()
		}
		// Structure overhead: one byte per parent edge.
		total += len(n.parents[v])
	}
	return total
}

// cpdFactor returns φ(v, Pa(v)) = P(v | Pa(v)) as a dense factor, memoized
// per variable and safe for concurrent inference. Callers must not mutate
// the result (inference operations all copy).
func (n *Network) cpdFactor(v int) *factor.Factor {
	n.mu.Lock()
	f := n.factors[v]
	if f == nil {
		f = n.cpds[v].Factor(v, n.parents[v], n.vars[v].Card, n.ParentCards(v))
		n.factors[v] = f
	}
	n.mu.Unlock()
	return f
}

// JointFactor materializes the full joint distribution. Exponential in the
// number of variables; intended for tests and tiny models only.
func (n *Network) JointFactor() *factor.Factor {
	order, err := n.TopoOrder()
	if err != nil {
		panic(err)
	}
	joint := factor.Scalar(1)
	for _, v := range order {
		joint = factor.Product(joint, n.cpdFactor(v))
	}
	return joint
}

// JointProb returns the probability of the full assignment (one value per
// variable, aligned with variable ids) via the chain rule — O(#vars).
func (n *Network) JointProb(assignment []int32) float64 {
	if len(assignment) != len(n.vars) {
		panic(fmt.Sprintf("bayesnet: assignment over %d values for %d vars", len(assignment), len(n.vars)))
	}
	p := 1.0
	for v := range n.vars {
		pvals := make([]int32, len(n.parents[v]))
		for i, q := range n.parents[v] {
			pvals[i] = assignment[q]
		}
		p *= n.cpds[v].Prob(assignment[v], pvals)
		if p == 0 {
			return 0
		}
	}
	return p
}

// Sample draws one full assignment by ancestral sampling.
func (n *Network) Sample(rng *rand.Rand) []int32 {
	order, err := n.TopoOrder()
	if err != nil {
		panic(err)
	}
	out := make([]int32, len(n.vars))
	for _, v := range order {
		pvals := make([]int32, len(n.parents[v]))
		for i, q := range n.parents[v] {
			pvals[i] = out[q]
		}
		u := rng.Float64()
		var cum float64
		val := int32(n.vars[v].Card - 1)
		for x := 0; x < n.vars[v].Card; x++ {
			cum += n.cpds[v].Prob(int32(x), pvals)
			if u < cum {
				val = int32(x)
				break
			}
		}
		out[v] = val
	}
	return out
}
