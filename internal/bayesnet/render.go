package bayesnet

import (
	"fmt"
	"strings"
)

// RenderCPD pretty-prints a CPD for inspection: tree CPDs as an indented
// decision tree with the supplied parent and value names, table CPDs as a
// per-configuration summary (capped to keep output readable).
func RenderCPD(c CPD, parentNames []string, valueNames func(parent int, value int32) string) string {
	var b strings.Builder
	switch c := c.(type) {
	case *TreeCPD:
		renderTree(&b, c.Root, parentNames, valueNames, 0)
	case *TableCPD:
		configs := len(c.Dist) / c.ChildCard
		const maxConfigs = 16
		for cfg := 0; cfg < configs && cfg < maxConfigs; cfg++ {
			vals := decodeConfig(cfg, c.ParentCards)
			parts := make([]string, len(vals))
			for i, v := range vals {
				parts[i] = fmt.Sprintf("%s=%s", parentNames[i], valueNames(i, v))
			}
			ctx := strings.Join(parts, ", ")
			if ctx == "" {
				ctx = "(no parents)"
			}
			fmt.Fprintf(&b, "%s: %s\n", ctx, distString(c.Dist[cfg*c.ChildCard:(cfg+1)*c.ChildCard]))
		}
		if configs > maxConfigs {
			fmt.Fprintf(&b, "… %d more configurations\n", configs-maxConfigs)
		}
	default:
		fmt.Fprintf(&b, "<%s CPD>\n", c.Kind())
	}
	return b.String()
}

func renderTree(b *strings.Builder, n *TreeNode, parentNames []string, valueNames func(int, int32) string, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s-> %s\n", indent, distString(n.Dist))
		return
	}
	name := parentNames[n.Split]
	switch n.Op {
	case OpEQ:
		fmt.Fprintf(b, "%sif %s = %s:\n", indent, name, valueNames(n.Split, n.Arg))
		renderTree(b, n.Children[0], parentNames, valueNames, depth+1)
		fmt.Fprintf(b, "%selse:\n", indent)
		renderTree(b, n.Children[1], parentNames, valueNames, depth+1)
	case OpLE:
		fmt.Fprintf(b, "%sif %s <= %s:\n", indent, name, valueNames(n.Split, n.Arg))
		renderTree(b, n.Children[0], parentNames, valueNames, depth+1)
		fmt.Fprintf(b, "%selse:\n", indent)
		renderTree(b, n.Children[1], parentNames, valueNames, depth+1)
	default: // OpValue
		for v, child := range n.Children {
			fmt.Fprintf(b, "%scase %s = %s:\n", indent, name, valueNames(n.Split, int32(v)))
			renderTree(b, child, parentNames, valueNames, depth+1)
		}
	}
}

func decodeConfig(cfg int, cards []int) []int32 {
	vals := make([]int32, len(cards))
	for i, c := range cards {
		vals[i] = int32(cfg % c)
		cfg /= c
	}
	return vals
}

func distString(dist []float64) string {
	parts := make([]string, len(dist))
	for i, p := range dist {
		parts[i] = fmt.Sprintf("%.3f", p)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
