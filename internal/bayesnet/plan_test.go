package bayesnet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// randomEvent draws a random event over the network: each chosen variable
// carries either equality evidence (one value) or set evidence (two or
// more values).
func randomEvent(rng *rand.Rand, net *Network) Event {
	evt := Event{}
	for v := 0; v < net.NumVars(); v++ {
		if rng.Float64() > 0.5 {
			continue
		}
		card := net.Var(v).Card
		if rng.Float64() < 0.5 {
			evt[v] = []int32{int32(rng.Intn(card))}
		} else {
			k := 2 + rng.Intn(card-1)
			perm := rng.Perm(card)
			set := make([]int32, 0, k)
			for _, x := range perm[:k] {
				set = append(set, int32(x))
			}
			evt[v] = set
		}
	}
	if len(evt) == 0 {
		evt[rng.Intn(net.NumVars())] = []int32{0}
	}
	return evt
}

// TestPlanDifferentialRandom is the plan-cache correctness contract: across
// random networks, shapes, and evidence, the compiled path must agree with
// the plan-free path within 1e-12 — and because a plan replays the exact
// operation sequence, the agreement is in fact bitwise.
func TestPlanDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for netTrial := 0; netTrial < 8; netTrial++ {
		net := randomNet(rng, 4+rng.Intn(5))
		for _, ord := range []ElimOrder{MinFill, ReverseTopo} {
			for trial := 0; trial < 40; trial++ {
				evt := randomEvent(rng, net)
				want, err := net.ProbabilityUncompiledOrd(evt, ord)
				if err != nil {
					t.Fatalf("uncompiled: %v", err)
				}
				got, err := net.ProbabilityOrd(evt, ord)
				if err != nil {
					t.Fatalf("compiled: %v", err)
				}
				if got != want {
					t.Fatalf("net %d ord %v evt %v: compiled %v, uncompiled %v (diff %g)",
						netTrial, ord, evt, got, want, got-want)
				}
			}
		}
	}
}

// TestPlanCacheHitRate verifies that queries differing only in constants
// share one plan, and that PlanStats reports the reuse.
func TestPlanCacheHitRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := randomNet(rng, 5)
	for i := 0; i < 50; i++ {
		evt := Event{
			0: []int32{int32(i % net.Var(0).Card)},
			2: []int32{int32(i % net.Var(2).Card)},
		}
		if _, err := net.Probability(evt); err != nil {
			t.Fatal(err)
		}
	}
	st := net.PlanStats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (one shape)", st.Misses)
	}
	if st.Hits != 49 {
		t.Fatalf("hits = %d, want 49", st.Hits)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if r := st.HitRate(); r < 0.9 {
		t.Fatalf("hit rate = %v, want > 0.9", r)
	}
	// A different shape (set evidence instead of equality) compiles anew.
	if _, err := net.Probability(Event{0: []int32{0, 1}, 2: []int32{0}}); err != nil {
		t.Fatal(err)
	}
	if st := net.PlanStats(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("after new shape: misses = %d entries = %d, want 2/2", st.Misses, st.Entries)
	}
}

// TestPlanCacheInvalidation checks that SetCPD drops compiled plans so
// estimates never serve stale parameters.
func TestPlanCacheInvalidation(t *testing.T) {
	net := New([]Variable{{Name: "A", Card: 2}})
	cpd := NewTableCPD(2, nil)
	cpd.SetDist(nil, []float64{0.25, 0.75})
	net.SetCPD(0, cpd)
	evt := Event{0: []int32{1}}
	if p, _ := net.Probability(evt); p != 0.75 {
		t.Fatalf("before swap: %v, want 0.75", p)
	}
	cpd2 := NewTableCPD(2, nil)
	cpd2.SetDist(nil, []float64{0.9, 0.1})
	net.SetCPD(0, cpd2)
	if p, _ := net.Probability(evt); p != 0.1 {
		t.Fatalf("after swap: %v, want 0.1 (stale plan served)", p)
	}
	if st := net.PlanStats(); st.Entries != 1 {
		t.Fatalf("entries after invalidation = %d, want 1 (recompiled)", st.Entries)
	}
}

// TestPlanBudgetParity checks that a budget refusal through a plan carries
// the same typed error and fields as the plan-free guard, and costs no
// work (it is a pre-scan over plan constants).
func TestPlanBudgetParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := randomNet(rng, 8)
	evt := Event{7: []int32{0, 1}} // closure pulls in ancestors; products run
	budget := Budget{MaxCells: 1}
	_, errU := net.ProbabilityUncompiledBudget(context.Background(), evt, budget)
	_, errC := net.ProbabilityBudget(context.Background(), evt, budget)
	if errU == nil || errC == nil {
		// Shape may happen to need no products; force one with wider evidence.
		evt = Event{5: []int32{0, 1}, 6: []int32{0, 1}, 7: []int32{0, 1}}
		_, errU = net.ProbabilityUncompiledBudget(context.Background(), evt, budget)
		_, errC = net.ProbabilityBudget(context.Background(), evt, budget)
	}
	if errU == nil || errC == nil {
		t.Fatalf("expected budget refusal on both paths, got uncompiled=%v compiled=%v", errU, errC)
	}
	if !errors.Is(errC, ErrBudgetExceeded) {
		t.Fatalf("compiled error %v does not unwrap to ErrBudgetExceeded", errC)
	}
	var bu, bc *BudgetError
	if !errors.As(errU, &bu) || !errors.As(errC, &bc) {
		t.Fatalf("expected *BudgetError on both paths")
	}
	if *bu != *bc {
		t.Fatalf("budget errors differ: uncompiled %+v, compiled %+v", bu, bc)
	}
}

// TestPlanCancelParity checks that an already-cancelled context stops a
// compiled run at the first variable boundary, like the uncompiled loop.
func TestPlanCancelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := randomNet(rng, 6)
	evt := Event{5: []int32{0, 1}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := net.ProbabilityCtx(ctx, evt)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("compiled run under cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestPlanConcurrentUseAndInvalidate races plan execution against cache
// invalidation; under -race this is the regression test for the plan
// cache's locking.
func TestPlanConcurrentUseAndInvalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := randomNet(rng, 6)
	events := make([]Event, 8)
	want := make([]float64, len(events))
	for i := range events {
		events[i] = randomEvent(rng, net)
		p, err := net.Probability(events[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	stop := make(chan struct{})
	var invalidator sync.WaitGroup
	invalidator.Add(1)
	go func() {
		defer invalidator.Done()
		for {
			select {
			case <-stop:
				return
			default:
				net.InvalidatePlans()
			}
		}
	}()
	var workers sync.WaitGroup
	for g := 0; g < 8; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for r := 0; r < 200; r++ {
				i := (g + r) % len(events)
				p, err := net.Probability(events[i])
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if p != want[i] {
					t.Errorf("goroutine %d event %d: %v, want %v", g, i, p, want[i])
					return
				}
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	invalidator.Wait()
}
