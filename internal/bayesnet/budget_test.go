package bayesnet

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"prmsel/internal/faults"
)

func testRNG() *rand.Rand { return rand.New(rand.NewSource(7)) }

// overBudgetEvent is a range event on fig1's H: it keeps every closure
// variable alive, so elimination must build a genuine multi-variable
// product (E×I is a 9-cell, 2-variable factor).
func overBudgetEvent() Event { return Event{2: {0, 1}} }

func TestBudgetRefusesOversizedProduct(t *testing.T) {
	net := fig1Net(t)
	_, err := net.ProbabilityBudget(context.Background(), overBudgetEvent(), Budget{MaxCells: 2})
	if err == nil {
		t.Fatal("ProbabilityBudget under a 2-cell budget succeeded, want refusal")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want errors.Is(_, ErrBudgetExceeded)", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want a *BudgetError", err)
	}
	if be.Cells <= be.MaxCells {
		t.Errorf("BudgetError cells = %d, max %d: refused a factor under budget", be.Cells, be.MaxCells)
	}
}

func TestBudgetWidthBound(t *testing.T) {
	net := fig1Net(t)
	_, err := net.ProbabilityBudget(context.Background(), overBudgetEvent(), Budget{MaxWidth: 1})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget refusal on width", err)
	}
}

func TestBudgetGenerousMatchesUnbudgeted(t *testing.T) {
	net := fig1Net(t)
	for _, evt := range []Event{
		overBudgetEvent(),
		{0: {0}, 1: {0}, 2: {0}},
		{1: {1, 2}, 2: {1}},
	} {
		want, err := net.Probability(evt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := net.ProbabilityBudget(context.Background(), evt, Budget{MaxCells: 1 << 20, MaxWidth: 16})
		if err != nil {
			t.Fatalf("budgeted inference failed: %v", err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("budgeted P = %v, want %v", got, want)
		}
	}
}

func TestBudgetZeroValueIsUnlimited(t *testing.T) {
	if (Budget{}).Enabled() {
		t.Fatal("zero Budget reports Enabled")
	}
	net := fig1Net(t)
	p, err := net.ProbabilityBudget(context.Background(), overBudgetEvent(), Budget{})
	if err != nil || p <= 0 {
		t.Fatalf("unlimited budget: P = %v, err = %v", p, err)
	}
}

func TestBudgetedInferenceHonorsCancellation(t *testing.T) {
	net := fig1Net(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := net.ProbabilityBudget(ctx, overBudgetEvent(), Budget{MaxCells: 1 << 20})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestInferFaultPoint(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	boom := errors.New("injected inference failure")
	faults.Set("bayesnet.infer", faults.Fault{Err: boom})
	net := fig1Net(t)
	_, err := net.Probability(overBudgetEvent())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	faults.Clear("bayesnet.infer")
	if _, err := net.Probability(overBudgetEvent()); err != nil {
		t.Fatalf("after clearing the fault: %v", err)
	}
}

func TestApproxFaultPointAndCancellation(t *testing.T) {
	faults.Reset()
	defer faults.Reset()
	net := fig1Net(t)
	boom := errors.New("injected sampler failure")
	faults.Set("bayesnet.approx", faults.Fault{Err: boom})
	if _, err := net.LikelihoodWeightingCtx(context.Background(), overBudgetEvent(), 128, testRNG()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	faults.Reset()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := net.LikelihoodWeightingCtx(ctx, overBudgetEvent(), 1<<20, testRNG()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded mid-sampling", err)
	}
}
