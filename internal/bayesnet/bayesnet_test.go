package bayesnet

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fig1Net builds the paper's Figure 1(b) factored model:
// P(E), P(I|E), P(H|I) with the exact published numbers.
func fig1Net(t testing.TB) *Network {
	net := New([]Variable{
		{Name: "Education", Card: 3},
		{Name: "Income", Card: 3},
		{Name: "HomeOwner", Card: 2},
	})
	e := NewTableCPD(3, nil)
	copy(e.Dist, []float64{0.5, 0.3, 0.2})
	net.SetCPD(0, e)

	net.SetParents(1, []int{0})
	i := NewTableCPD(3, []int{3})
	i.SetDist([]int32{0}, []float64{0.6, 0.3, 0.1}) // E = high-school
	i.SetDist([]int32{1}, []float64{0.5, 0.3, 0.2}) // E = college
	i.SetDist([]int32{2}, []float64{0.1, 0.3, 0.6}) // E = advanced
	net.SetCPD(1, i)

	net.SetParents(2, []int{1})
	h := NewTableCPD(2, []int{3})
	h.SetDist([]int32{0}, []float64{0.9, 0.1})
	h.SetDist([]int32{1}, []float64{0.7, 0.3})
	h.SetDist([]int32{2}, []float64{0.1, 0.9})
	net.SetCPD(2, h)

	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

// fig1Joint is Figure 1(a): P(E,I,H) indexed [e][i][h].
var fig1Joint = [3][3][2]float64{
	{{0.27, 0.03}, {0.105, 0.045}, {0.005, 0.045}},
	{{0.135, 0.015}, {0.063, 0.027}, {0.006, 0.054}},
	{{0.018, 0.002}, {0.042, 0.018}, {0.012, 0.108}},
}

// TestFigure1FactoredJointMatchesFull verifies the paper's worked example:
// the factored representation (Fig 1b) encodes exactly the joint of Fig 1a.
func TestFigure1FactoredJointMatchesFull(t *testing.T) {
	net := fig1Net(t)
	for e := int32(0); e < 3; e++ {
		for i := int32(0); i < 3; i++ {
			for h := int32(0); h < 2; h++ {
				want := fig1Joint[e][i][h]
				got := net.JointProb([]int32{e, i, h})
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("P(E=%d,I=%d,H=%d) = %v, want %v", e, i, h, got, want)
				}
			}
		}
	}
}

func TestFigure1ConditionalIndependence(t *testing.T) {
	// In Fig 1, H ⟂ E | I: P(h|i,e) must not depend on e.
	net := fig1Net(t)
	joint := net.JointFactor()
	for i := int32(0); i < 3; i++ {
		var ref float64
		for e := int32(0); e < 3; e++ {
			var pih, pi float64
			for h := int32(0); h < 2; h++ {
				p := joint.At([]int32{e, i, h})
				pi += p
				if h == 1 {
					pih = p
				}
			}
			cond := pih / pi
			if e == 0 {
				ref = cond
			} else if math.Abs(cond-ref) > 1e-12 {
				t.Errorf("P(H=t|I=%d,E=%d) = %v, want %v", i, e, cond, ref)
			}
		}
	}
}

func TestProbabilityEqualityEvent(t *testing.T) {
	net := fig1Net(t)
	// P(E=h, I=l, H=f) from Fig 1(a) = 0.27.
	p, err := net.Probability(Event{0: {0}, 1: {0}, 2: {0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.27) > 1e-12 {
		t.Errorf("P = %v, want 0.27", p)
	}
}

func TestProbabilityRangeEvent(t *testing.T) {
	net := fig1Net(t)
	// P(I ∈ {m,h}, H=t) = .045+.045+.027+.054+.018+.108 = 0.297
	p, err := net.Probability(Event{1: {1, 2}, 2: {1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.297) > 1e-12 {
		t.Errorf("P = %v, want 0.297", p)
	}
}

func TestProbabilityEmptyEventIsOne(t *testing.T) {
	net := fig1Net(t)
	p, err := net.Probability(Event{})
	if err != nil || p != 1 {
		t.Fatalf("P(∅) = %v, %v; want 1, nil", p, err)
	}
}

func TestProbabilityErrors(t *testing.T) {
	net := fig1Net(t)
	if _, err := net.Probability(Event{9: {0}}); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := net.Probability(Event{0: {}}); err == nil {
		t.Error("empty value set accepted")
	}
	if _, err := net.Probability(Event{0: {7}}); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

// randomNet generates a random DAG over n variables with random table CPDs.
func randomNet(rng *rand.Rand, n int) *Network {
	vars := make([]Variable, n)
	for i := range vars {
		vars[i] = Variable{Name: "V" + string(rune('A'+i)), Card: 2 + rng.Intn(3)}
	}
	net := New(vars)
	for v := 1; v < n; v++ {
		var parents []int
		for p := 0; p < v; p++ {
			if rng.Intn(3) == 0 {
				parents = append(parents, p)
			}
		}
		net.SetParents(v, parents)
	}
	for v := 0; v < n; v++ {
		cpd := NewTableCPD(vars[v].Card, net.ParentCards(v))
		configs := len(cpd.Dist) / vars[v].Card
		for c := 0; c < configs; c++ {
			var sum float64
			row := make([]float64, vars[v].Card)
			for x := range row {
				row[x] = rng.Float64() + 0.01
				sum += row[x]
			}
			for x := range row {
				cpd.Dist[c*vars[v].Card+x] = row[x] / sum
			}
		}
		net.SetCPD(v, cpd)
	}
	return net
}

// TestVariableEliminationMatchesJoint: P(evt) via VE equals the explicit
// sum over the materialized joint, for random nets and random events.
func TestVariableEliminationMatchesJoint(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomNet(rng, 2+rng.Intn(4))
		if err := net.Validate(); err != nil {
			t.Fatalf("invalid random net: %v", err)
		}
		evt := Event{}
		for v := 0; v < net.NumVars(); v++ {
			if rng.Intn(2) == 0 {
				continue
			}
			var set []int32
			for x := 0; x < net.Var(v).Card; x++ {
				if rng.Intn(2) == 0 {
					set = append(set, int32(x))
				}
			}
			if len(set) == 0 {
				set = []int32{0}
			}
			evt[v] = set
		}
		got, err := net.Probability(evt)
		if err != nil {
			return false
		}
		// Brute force over the joint.
		joint := net.JointFactor()
		accept := make([]map[int32]bool, net.NumVars())
		for v, set := range evt {
			accept[v] = make(map[int32]bool)
			for _, x := range set {
				accept[v][x] = true
			}
		}
		var want float64
		assignment := make([]int32, net.NumVars())
		var rec func(v int)
		rec = func(v int) {
			if v == net.NumVars() {
				ok := true
				for u, a := range accept {
					if a != nil && !a[assignment[u]] {
						ok = false
						break
					}
				}
				if ok {
					want += joint.At(assignment)
				}
				return
			}
			for x := 0; x < net.Var(v).Card; x++ {
				assignment[v] = int32(x)
				rec(v + 1)
			}
		}
		rec(0)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestElimOrdersAgree: min-fill and reverse-topological elimination give
// the same probabilities.
func TestElimOrdersAgree(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := randomNet(rng, 3+rng.Intn(3))
		evt := Event{0: {0}, net.NumVars() - 1: {0}}
		p1, err1 := net.ProbabilityOrd(evt, MinFill)
		p2, err2 := net.ProbabilityOrd(evt, ReverseTopo)
		return err1 == nil && err2 == nil && math.Abs(p1-p2) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeCPDEquivalentTable(t *testing.T) {
	// A tree CPD that splits on its single parent must behave like the
	// equivalent table CPD.
	tree := NewTreeCPD(2, []int{3})
	tree.Root = &TreeNode{
		Split: 0,
		Children: []*TreeNode{
			{Dist: []float64{0.9, 0.1}},
			{Dist: []float64{0.7, 0.3}},
			{Dist: []float64{0.1, 0.9}},
		},
	}
	table := NewTableCPD(2, []int{3})
	table.SetDist([]int32{0}, []float64{0.9, 0.1})
	table.SetDist([]int32{1}, []float64{0.7, 0.3})
	table.SetDist([]int32{2}, []float64{0.1, 0.9})
	for pv := int32(0); pv < 3; pv++ {
		for x := int32(0); x < 2; x++ {
			if tree.Prob(x, []int32{pv}) != table.Prob(x, []int32{pv}) {
				t.Errorf("tree != table at x=%d, parent=%d", x, pv)
			}
		}
	}
	ftree := tree.Factor(5, []int{2}, 2, []int{3})
	ftable := table.Factor(5, []int{2}, 2, []int{3})
	for i := range ftree.Data {
		if math.Abs(ftree.Data[i]-ftable.Data[i]) > 1e-12 {
			t.Fatalf("factors differ at %d", i)
		}
	}
}

func TestTreeCPDSharedLeafSavesParams(t *testing.T) {
	// One leaf shared across parent values -> fewer params than a table.
	tree := NewTreeCPD(3, []int{4, 5})
	if got := tree.NumParams(); got != 2 {
		t.Errorf("single-leaf tree params = %d, want 2", got)
	}
	table := NewTableCPD(3, []int{4, 5})
	if got := table.NumParams(); got != 40 {
		t.Errorf("table params = %d, want 40", got)
	}
	if tree.StorageBytes() >= table.StorageBytes() {
		t.Errorf("tree bytes %d not below table bytes %d", tree.StorageBytes(), table.StorageBytes())
	}
}

func TestValidateCatchesMissingAndMalformedCPDs(t *testing.T) {
	net := New([]Variable{{Name: "A", Card: 2}, {Name: "B", Card: 2}})
	net.SetCPD(0, NewTableCPD(2, nil))
	if err := net.Validate(); err == nil {
		t.Error("missing CPD accepted")
	}
	net.SetCPD(1, NewTableCPD(3, nil)) // wrong child card
	if err := net.Validate(); err == nil {
		t.Error("mis-shaped CPD accepted")
	}
	net.SetParents(0, []int{1})
	net.SetParents(1, []int{0})
	if err := net.Validate(); err == nil {
		t.Error("cycle accepted")
	}
}

func TestSampleMatchesMarginals(t *testing.T) {
	net := fig1Net(t)
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	counts := make([]int, 3)
	for i := 0; i < n; i++ {
		counts[net.Sample(rng)[1]]++ // Income marginal: 0.47, 0.30, 0.23
	}
	want := []float64{0.47, 0.30, 0.23}
	for i, w := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("P(I=%d) sampled = %v, want %v", i, got, w)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	net := fig1Net(t)
	// Swap one CPD for a tree to cover both kinds.
	tree := NewTreeCPD(2, []int{3})
	tree.Root = &TreeNode{
		Split: 0,
		Children: []*TreeNode{
			{Dist: []float64{0.9, 0.1}},
			{Dist: []float64{0.7, 0.3}},
			{Dist: []float64{0.1, 0.9}},
		},
	}
	net.SetCPD(2, tree)

	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for e := int32(0); e < 3; e++ {
		for i := int32(0); i < 3; i++ {
			for h := int32(0); h < 2; h++ {
				a := net.JointProb([]int32{e, i, h})
				b := back.JointProb([]int32{e, i, h})
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("joint differs after round trip at (%d,%d,%d)", e, i, h)
				}
			}
		}
	}
	if back.StorageBytes() != net.StorageBytes() {
		t.Errorf("storage bytes changed: %d -> %d", net.StorageBytes(), back.StorageBytes())
	}
}

// TestParameterCompression reproduces the §2.2 claim: a structured network
// over the census attributes has ~3 orders of magnitude fewer parameters
// than the explicit joint (the paper reports 951 vs ≈7·10⁹).
func TestParameterCompression(t *testing.T) {
	cards := []int{18, 9, 17, 7, 24, 5, 2, 10, 3, 3, 42, 4}
	vars := make([]Variable, len(cards))
	jointCells := 1.0
	for i, c := range cards {
		vars[i] = Variable{Name: "A" + string(rune('a'+i)), Card: c}
		jointCells *= float64(c)
	}
	net := New(vars)
	// A sparse structure: each variable depends on at most two predecessors.
	for v := 1; v < len(vars); v++ {
		parents := []int{v - 1}
		if v > 1 {
			parents = append(parents, v-2)
		}
		net.SetParents(v, parents)
		net.SetCPD(v, NewTableCPD(cards[v], net.ParentCards(v)))
	}
	net.SetCPD(0, NewTableCPD(cards[0], nil))
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	params := float64(net.NumParams())
	if jointCells < 1e9 {
		t.Fatalf("joint cells = %g, expected billions", jointCells)
	}
	if params > jointCells/1e3 {
		t.Errorf("BN params %g not dramatically below joint size %g", params, jointCells)
	}
}
