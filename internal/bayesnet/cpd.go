package bayesnet

import (
	"fmt"

	"prmsel/internal/factor"
)

// SizeAccounting: model storage is measured in bytes, the way the paper's
// evaluation allocates space to each estimator. One free parameter costs
// ParamBytes; one interior split vertex of a tree CPD costs SplitBytes
// (split-variable id plus branch bookkeeping); every parent edge costs one
// byte of structure (charged by Network.StorageBytes).
const (
	// ParamBytes is the cost of one free CPD parameter.
	ParamBytes = 4
	// SplitBytes is the cost of one interior vertex of a tree CPD.
	SplitBytes = 4
)

// CPD is a conditional probability distribution P(X | Parents).
type CPD interface {
	// Prob returns P(X = childVal | Parents = parentVals); parentVals align
	// with the owning variable's parent list.
	Prob(childVal int32, parentVals []int32) float64
	// Factor materializes P(X | Pa) as a dense factor over the child and
	// parent variable ids.
	Factor(childID int, parentIDs []int, childCard int, parentCards []int) *factor.Factor
	// NumParams returns the number of free parameters.
	NumParams() int
	// StorageBytes returns the storage cost under SizeAccounting.
	StorageBytes() int
	// Kind returns "table" or "tree".
	Kind() string

	check(childCard int, parentCards []int) error
}

// TableCPD stores one distribution over the child per full parent
// configuration.
type TableCPD struct {
	ChildCard   int
	ParentCards []int
	// Dist is indexed childVal + ChildCard*config where config is the
	// mixed-radix encoding of the parent values (first parent fastest).
	Dist []float64
}

// NewTableCPD returns a table CPD with all distributions uniform.
func NewTableCPD(childCard int, parentCards []int) *TableCPD {
	configs := 1
	for _, c := range parentCards {
		configs *= c
	}
	t := &TableCPD{
		ChildCard:   childCard,
		ParentCards: append([]int(nil), parentCards...),
		Dist:        make([]float64, childCard*configs),
	}
	u := 1 / float64(childCard)
	for i := range t.Dist {
		t.Dist[i] = u
	}
	return t
}

// Clone returns a deep copy sharing nothing with t, so a refit can
// mutate the copy's distributions while readers keep the original.
func (t *TableCPD) Clone() *TableCPD {
	return &TableCPD{
		ChildCard:   t.ChildCard,
		ParentCards: append([]int(nil), t.ParentCards...),
		Dist:        append([]float64(nil), t.Dist...),
	}
}

// Config returns the mixed-radix index of parentVals.
func (t *TableCPD) Config(parentVals []int32) int {
	cfg, stride := 0, 1
	for i, v := range parentVals {
		cfg += int(v) * stride
		stride *= t.ParentCards[i]
	}
	return cfg
}

// SetDist installs the child distribution for one parent configuration.
func (t *TableCPD) SetDist(parentVals []int32, dist []float64) {
	if len(dist) != t.ChildCard {
		panic(fmt.Sprintf("bayesnet: SetDist got %d values for child card %d", len(dist), t.ChildCard))
	}
	base := t.Config(parentVals) * t.ChildCard
	copy(t.Dist[base:base+t.ChildCard], dist)
}

// Prob implements CPD.
func (t *TableCPD) Prob(childVal int32, parentVals []int32) float64 {
	return t.Dist[t.Config(parentVals)*t.ChildCard+int(childVal)]
}

// Factor implements CPD.
func (t *TableCPD) Factor(childID int, parentIDs []int, childCard int, parentCards []int) *factor.Factor {
	vars := append([]int{childID}, parentIDs...)
	cards := append([]int{childCard}, parentCards...)
	f := factor.New(vars, cards)
	assignment := make([]int32, len(vars)) // child first, then parents
	aligned := make([]int32, len(vars))    // aligned with f.Vars
	pos := make([]int, len(vars))          // position of vars[i] in f.Vars
	for i, v := range vars {
		for j, fv := range f.Vars {
			if fv == v {
				pos[i] = j
			}
		}
	}
	total := len(f.Data)
	for c := 0; c < total; c++ {
		// Decode c in the child-first mixed radix.
		rem := c
		for i := range vars {
			assignment[i] = int32(rem % cards[i])
			rem /= cards[i]
		}
		for i := range vars {
			aligned[pos[i]] = assignment[i]
		}
		f.Set(aligned, t.Prob(assignment[0], assignment[1:]))
	}
	return f
}

// NumParams implements CPD.
func (t *TableCPD) NumParams() int {
	return len(t.Dist) / t.ChildCard * (t.ChildCard - 1)
}

// StorageBytes implements CPD.
func (t *TableCPD) StorageBytes() int { return t.NumParams() * ParamBytes }

// Kind implements CPD.
func (t *TableCPD) Kind() string { return "table" }

func (t *TableCPD) check(childCard int, parentCards []int) error {
	if t.ChildCard != childCard {
		return fmt.Errorf("table CPD child card %d, want %d", t.ChildCard, childCard)
	}
	if len(t.ParentCards) != len(parentCards) {
		return fmt.Errorf("table CPD over %d parents, want %d", len(t.ParentCards), len(parentCards))
	}
	for i, c := range parentCards {
		if t.ParentCards[i] != c {
			return fmt.Errorf("table CPD parent %d card %d, want %d", i, t.ParentCards[i], c)
		}
	}
	want := childCard
	for _, c := range parentCards {
		want *= c
	}
	if len(t.Dist) != want {
		return fmt.Errorf("table CPD has %d entries, want %d", len(t.Dist), want)
	}
	return nil
}

// CloneCPD deep-copies any CPD the package defines. It exists for
// copy-on-write parameter maintenance: a refit clones every CPD, mutates
// the clones, and publishes them as a new immutable snapshot.
func CloneCPD(c CPD) CPD {
	switch c := c.(type) {
	case *TableCPD:
		return c.Clone()
	case *TreeCPD:
		return c.Clone()
	case nil:
		return nil
	default:
		panic(fmt.Sprintf("bayesnet: CloneCPD: unsupported CPD kind %q", c.Kind()))
	}
}

// SplitOp is the predicate kind of an interior tree-CPD vertex.
type SplitOp int

const (
	// OpValue is a k-way split: one child per value of the split parent.
	// The zero value, so hand-built trees default to it.
	OpValue SplitOp = iota
	// OpEQ is a binary split "parent == Arg": Children[0] is the equal
	// branch, Children[1] the rest.
	OpEQ
	// OpLE is a binary split "parent <= Arg" for ordinal parents:
	// Children[0] is the ≤ branch, Children[1] the rest.
	OpLE
)

// TreeNode is one vertex of a tree CPD: either a leaf carrying a child
// distribution, or an interior split on one parent.
type TreeNode struct {
	// Dist is non-nil exactly at leaves and has ChildCard entries.
	Dist []float64
	// Split is the index (into the parent list) of the parent this interior
	// vertex splits on.
	Split int
	// Op selects the predicate kind; Arg is its operand for OpEQ/OpLE.
	Op  SplitOp
	Arg int32
	// Children has one subtree per value of the split parent for OpValue,
	// and exactly two subtrees for OpEQ/OpLE.
	Children []*TreeNode
}

// child returns the subtree the parent value val routes to.
func (n *TreeNode) child(val int32) *TreeNode {
	switch n.Op {
	case OpEQ:
		if val == n.Arg {
			return n.Children[0]
		}
		return n.Children[1]
	case OpLE:
		if val <= n.Arg {
			return n.Children[0]
		}
		return n.Children[1]
	default:
		return n.Children[val]
	}
}

// IsLeaf reports whether n is a leaf.
func (n *TreeNode) IsLeaf() bool { return n.Dist != nil }

// TreeCPD is a CPD whose parent-configuration space is partitioned by a
// decision tree, so configurations that induce the same child distribution
// share parameters (paper §2.2, Fig 2b).
type TreeCPD struct {
	ChildCard   int
	ParentCards []int
	Root        *TreeNode
}

// NewTreeCPD returns a tree CPD consisting of a single uniform leaf.
func NewTreeCPD(childCard int, parentCards []int) *TreeCPD {
	dist := make([]float64, childCard)
	u := 1 / float64(childCard)
	for i := range dist {
		dist[i] = u
	}
	return &TreeCPD{
		ChildCard:   childCard,
		ParentCards: append([]int(nil), parentCards...),
		Root:        &TreeNode{Dist: dist},
	}
}

// Clone returns a deep copy of the whole tree — splits and leaf
// distributions — sharing nothing with t.
func (t *TreeCPD) Clone() *TreeCPD {
	var rec func(n *TreeNode) *TreeNode
	rec = func(n *TreeNode) *TreeNode {
		c := &TreeNode{Split: n.Split, Op: n.Op, Arg: n.Arg}
		if n.Dist != nil {
			c.Dist = append([]float64(nil), n.Dist...)
		}
		if n.Children != nil {
			c.Children = make([]*TreeNode, len(n.Children))
			for i, ch := range n.Children {
				c.Children[i] = rec(ch)
			}
		}
		return c
	}
	return &TreeCPD{
		ChildCard:   t.ChildCard,
		ParentCards: append([]int(nil), t.ParentCards...),
		Root:        rec(t.Root),
	}
}

// Leaf returns the leaf reached by parentVals.
func (t *TreeCPD) Leaf(parentVals []int32) *TreeNode {
	n := t.Root
	for !n.IsLeaf() {
		n = n.child(parentVals[n.Split])
	}
	return n
}

// Prob implements CPD.
func (t *TreeCPD) Prob(childVal int32, parentVals []int32) float64 {
	return t.Leaf(parentVals).Dist[childVal]
}

// Factor implements CPD.
func (t *TreeCPD) Factor(childID int, parentIDs []int, childCard int, parentCards []int) *factor.Factor {
	// Reuse the table path: walk all configurations through the tree.
	vars := append([]int{childID}, parentIDs...)
	cards := append([]int{childCard}, parentCards...)
	f := factor.New(vars, cards)
	assignment := make([]int32, len(vars))
	aligned := make([]int32, len(vars))
	pos := make([]int, len(vars))
	for i, v := range vars {
		for j, fv := range f.Vars {
			if fv == v {
				pos[i] = j
			}
		}
	}
	for c := 0; c < len(f.Data); c++ {
		rem := c
		for i := range vars {
			assignment[i] = int32(rem % cards[i])
			rem /= cards[i]
		}
		for i := range vars {
			aligned[pos[i]] = assignment[i]
		}
		f.Set(aligned, t.Prob(assignment[0], assignment[1:]))
	}
	return f
}

// Walk visits every node of the tree depth-first.
func (t *TreeCPD) Walk(fn func(*TreeNode)) {
	var rec func(*TreeNode)
	rec = func(n *TreeNode) {
		fn(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(t.Root)
}

// Leaves returns the number of leaves.
func (t *TreeCPD) Leaves() int {
	leaves := 0
	t.Walk(func(n *TreeNode) {
		if n.IsLeaf() {
			leaves++
		}
	})
	return leaves
}

// NumParams implements CPD.
func (t *TreeCPD) NumParams() int { return t.Leaves() * (t.ChildCard - 1) }

// StorageBytes implements CPD.
func (t *TreeCPD) StorageBytes() int {
	interior := 0
	t.Walk(func(n *TreeNode) {
		if !n.IsLeaf() {
			interior++
		}
	})
	return t.NumParams()*ParamBytes + interior*SplitBytes
}

// Kind implements CPD.
func (t *TreeCPD) Kind() string { return "tree" }

func (t *TreeCPD) check(childCard int, parentCards []int) error {
	if t.ChildCard != childCard {
		return fmt.Errorf("tree CPD child card %d, want %d", t.ChildCard, childCard)
	}
	if len(t.ParentCards) != len(parentCards) {
		return fmt.Errorf("tree CPD over %d parents, want %d", len(t.ParentCards), len(parentCards))
	}
	var err error
	t.Walk(func(n *TreeNode) {
		if err != nil {
			return
		}
		if n.IsLeaf() {
			if len(n.Dist) != childCard {
				err = fmt.Errorf("tree CPD leaf has %d entries, want %d", len(n.Dist), childCard)
			}
			return
		}
		if n.Split < 0 || n.Split >= len(parentCards) {
			err = fmt.Errorf("tree CPD splits on parent %d of %d", n.Split, len(parentCards))
			return
		}
		switch n.Op {
		case OpValue:
			if len(n.Children) != parentCards[n.Split] {
				err = fmt.Errorf("tree CPD split on parent %d has %d branches, want %d", n.Split, len(n.Children), parentCards[n.Split])
			}
		case OpEQ, OpLE:
			if len(n.Children) != 2 {
				err = fmt.Errorf("tree CPD binary split has %d branches", len(n.Children))
			}
			if n.Arg < 0 || int(n.Arg) >= parentCards[n.Split] {
				err = fmt.Errorf("tree CPD split operand %d out of domain [0,%d)", n.Arg, parentCards[n.Split])
			}
		default:
			err = fmt.Errorf("tree CPD has unknown split op %d", n.Op)
		}
	})
	return err
}
