package bayesnet

import (
	"fmt"
	"sort"

	"prmsel/internal/factor"
)

// JunctionTree is a compiled clique-tree representation of a network for
// repeated exact inference — the Lauritzen–Spiegelhalter architecture the
// paper cites as the standard BN inference engine. Compile once with
// Network.CompileJunctionTree, then answer many Probability queries; each
// query applies evidence to the clique potentials and runs a single
// collect pass.
type JunctionTree struct {
	net *Network
	// cliques[i] is the sorted variable set of clique i.
	cliques [][]int
	// parent[i] is the clique messages from i flow to (-1 at the root).
	parent []int
	// separator[i] = cliques[i] ∩ cliques[parent[i]].
	separator [][]int
	// assigned[i] lists the variables whose CPD factor multiplies into
	// clique i.
	assigned [][]int
	// order visits children before parents (collect order).
	order []int
}

// CompileJunctionTree builds a clique tree for the network: moralize,
// triangulate with the min-fill heuristic, extract maximal cliques, and
// connect them so the running-intersection property holds.
func (n *Network) CompileJunctionTree() (*JunctionTree, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nv := n.NumVars()

	// Moral graph: each CPD's family {v} ∪ Pa(v) becomes a clique.
	adj := make([]map[int]bool, nv)
	for v := 0; v < nv; v++ {
		adj[v] = make(map[int]bool)
	}
	connect := func(vs []int) {
		for _, a := range vs {
			for _, b := range vs {
				if a != b {
					adj[a][b] = true
				}
			}
		}
	}
	for v := 0; v < nv; v++ {
		connect(append([]int{v}, n.Parents(v)...))
	}

	// Triangulate by min-fill elimination, recording elimination cliques.
	remaining := make(map[int]bool, nv)
	for v := 0; v < nv; v++ {
		remaining[v] = true
	}
	elimCliques := make([][]int, 0, nv)
	for len(remaining) > 0 {
		best, bestFill, bestSize := -1, 1<<62, 1<<62
		for v := range remaining {
			var nbrs []int
			size := n.Var(v).Card
			for u := range adj[v] {
				if remaining[u] {
					nbrs = append(nbrs, u)
					size *= n.Var(u).Card
					if size > 1<<40 {
						size = 1 << 40
					}
				}
			}
			fill := 0
			for i := 0; i < len(nbrs); i++ {
				for j := i + 1; j < len(nbrs); j++ {
					if !adj[nbrs[i]][nbrs[j]] {
						fill++
					}
				}
			}
			if fill < bestFill || (fill == bestFill && size < bestSize) ||
				(fill == bestFill && size == bestSize && v < best) {
				best, bestFill, bestSize = v, fill, size
			}
		}
		clique := []int{best}
		for u := range adj[best] {
			if remaining[u] {
				clique = append(clique, u)
			}
		}
		sort.Ints(clique)
		elimCliques = append(elimCliques, clique)
		// Add fill edges among the remaining neighbours.
		var nbrs []int
		for u := range adj[best] {
			if remaining[u] {
				nbrs = append(nbrs, u)
			}
		}
		for i := 0; i < len(nbrs); i++ {
			for j := 0; j < len(nbrs); j++ {
				if i != j {
					adj[nbrs[i]][nbrs[j]] = true
				}
			}
		}
		delete(remaining, best)
	}

	// Keep maximal cliques only: drop any elimination clique strictly
	// contained in another (and deduplicate equals, keeping the first).
	var cliques [][]int
	for i, c := range elimCliques {
		maximal := true
		for j, d := range elimCliques {
			if i == j {
				continue
			}
			if subset(c, d) && (len(c) < len(d) || j < i) {
				maximal = false
				break
			}
		}
		if maximal {
			cliques = append(cliques, c)
		}
	}

	// Junction tree by maximum spanning tree over separator sizes
	// (Kruskal): for a triangulated graph this yields a tree with the
	// running-intersection property. Disconnected components form a
	// forest, each with its own root.
	type edge struct{ i, j, w int }
	var edges []edge
	for i := 0; i < len(cliques); i++ {
		for j := i + 1; j < len(cliques); j++ {
			w := intersectionSize(cliques[i], cliques[j])
			if w > 0 {
				edges = append(edges, edge{i, j, w})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	comp := make([]int, len(cliques))
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if comp[x] != x {
			comp[x] = find(comp[x])
		}
		return comp[x]
	}
	treeAdj := make([][]int, len(cliques))
	for _, e := range edges {
		ri, rj := find(e.i), find(e.j)
		if ri == rj {
			continue
		}
		comp[ri] = rj
		treeAdj[e.i] = append(treeAdj[e.i], e.j)
		treeAdj[e.j] = append(treeAdj[e.j], e.i)
	}

	// Orient the forest: BFS from each unvisited clique; collect order is
	// the reversed BFS order (children before parents).
	parent := make([]int, len(cliques))
	separator := make([][]int, len(cliques))
	visited := make([]bool, len(cliques))
	var bfs []int
	for r := 0; r < len(cliques); r++ {
		if visited[r] {
			continue
		}
		parent[r] = -1
		visited[r] = true
		queue := []int{r}
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			bfs = append(bfs, c)
			for _, nb := range treeAdj[c] {
				if !visited[nb] {
					visited[nb] = true
					parent[nb] = c
					separator[nb] = intersection(cliques[nb], cliques[c])
					queue = append(queue, nb)
				}
			}
		}
	}
	order := make([]int, len(bfs))
	for i, c := range bfs {
		order[len(bfs)-1-i] = c
	}

	// Assign each family to a clique that contains it.
	assigned := make([][]int, len(cliques))
	for v := 0; v < nv; v++ {
		family := append([]int{v}, n.Parents(v)...)
		sort.Ints(family)
		placed := false
		for i, c := range cliques {
			if subset(family, c) {
				assigned[i] = append(assigned[i], v)
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("bayesnet: no clique contains the family of %s", n.Var(v).Name)
		}
	}

	jt := &JunctionTree{
		net:       n,
		cliques:   cliques,
		parent:    parent,
		separator: separator,
		assigned:  assigned,
		order:     order,
	}
	// Guard against treewidth blow-ups: a clique potential beyond the cell
	// limit would allocate gigabytes. Callers should fall back to
	// variable elimination (which exploits evidence) on this error.
	const maxPotentialCells = 1 << 24
	for _, c := range cliques {
		cells := 1
		for _, v := range c {
			cells *= n.Var(v).Card
			if cells > maxPotentialCells {
				return nil, fmt.Errorf("bayesnet: junction tree clique over %v exceeds %d cells; use variable elimination",
					cliqueNames(n, c), maxPotentialCells)
			}
		}
	}
	return jt, nil
}

func cliqueNames(n *Network, c []int) []string {
	names := make([]string, len(c))
	for i, v := range c {
		names[i] = n.Var(v).Name
	}
	return names
}

// subset reports whether sorted slice a ⊆ sorted slice b.
func subset(a, b []int) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
	}
	return true
}

// intersection returns the sorted intersection of two sorted slices.
func intersection(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// intersectionSize counts the common elements of two sorted slices.
func intersectionSize(a, b []int) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// NumCliques returns the number of cliques.
func (jt *JunctionTree) NumCliques() int { return len(jt.cliques) }

// MaxCliqueSize returns the largest clique's variable count (treewidth+1).
func (jt *JunctionTree) MaxCliqueSize() int {
	m := 0
	for _, c := range jt.cliques {
		if len(c) > m {
			m = len(c)
		}
	}
	return m
}

// Probability returns P(evt), computed by applying the evidence to the
// clique potentials and collecting messages to the root; the root
// potential's total mass is the probability of the evidence.
func (jt *JunctionTree) Probability(evt Event) (float64, error) {
	if len(evt) == 0 {
		return 1, nil
	}
	accept := make(map[int]map[int32]bool, len(evt))
	for v, set := range evt {
		if v < 0 || v >= jt.net.NumVars() {
			return 0, fmt.Errorf("bayesnet: event references unknown variable %d", v)
		}
		if len(set) == 0 {
			return 0, fmt.Errorf("bayesnet: event on %s has empty value set", jt.net.Var(v).Name)
		}
		m := make(map[int32]bool, len(set))
		for _, val := range set {
			if val < 0 || int(val) >= jt.net.Var(v).Card {
				return 0, fmt.Errorf("bayesnet: event value %d out of domain for %s", val, jt.net.Var(v).Name)
			}
			m[val] = true
		}
		accept[v] = m
	}

	// Initialize potentials: product of assigned CPD factors with evidence
	// applied per factor before multiplying — equality evidence clamps and
	// drops the dimension (keeping potentials small), range evidence zeroes
	// rejected values.
	potentials := make([]*factor.Factor, len(jt.cliques))
	for i := range jt.cliques {
		pot := factor.Scalar(1)
		for _, v := range jt.assigned[i] {
			f := jt.net.cpdFactor(v)
			for _, u := range f.Vars {
				if m, ok := accept[u]; ok {
					if len(m) == 1 {
						for val := range m {
							f = f.Fix(u, val)
						}
					} else {
						f = f.Restrict(u, m)
					}
				}
			}
			pot = factor.Product(pot, f)
		}
		potentials[i] = pot
	}

	// Collect pass: each clique marginalizes onto its separator and sends
	// the message to its parent.
	var rootMass float64
	counted := false
	for _, i := range jt.order {
		if jt.parent[i] < 0 {
			// A root: its mass, times the masses of any other roots
			// (disconnected networks), is the total probability.
			if !counted {
				rootMass = 1
				counted = true
			}
			rootMass *= potentials[i].Sum()
			continue
		}
		msg := potentials[i]
		keep := make(map[int]bool, len(jt.separator[i]))
		for _, v := range jt.separator[i] {
			keep[v] = true
		}
		for _, v := range jt.cliques[i] {
			if !keep[v] {
				msg = msg.SumOut(v)
			}
		}
		potentials[jt.parent[i]] = factor.Product(potentials[jt.parent[i]], msg)
	}
	return rootMass, nil
}
