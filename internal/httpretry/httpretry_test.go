package httpretry

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetriesUntilSuccess(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		b, _ := io.ReadAll(r.Body)
		w.Write(b)
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxRetryAfter: 5 * time.Millisecond, Seed: 1})
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte(`{"q":1}`))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"q":1}` {
		t.Fatalf("retried request body not replayed: got %q", body)
	}
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want 3", hits.Load())
	}
}

func TestExhaustionReturnsLastResponse(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxRetryAfter: time.Millisecond, Seed: 1})
	resp, err := c.Post(context.Background(), ts.URL, "application/json", []byte(`{}`))
	if err != nil {
		t.Fatalf("Post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the final 503 passed through", resp.StatusCode)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want exactly MaxAttempts", hits.Load())
	}
}

func TestConnectionErrorsRetry(t *testing.T) {
	// A server that dies after the first response: the retry hits a
	// refused connection and the client reports the transport error once
	// attempts run out.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	url := ts.URL
	ts.Close()

	c := New(Config{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	start := time.Now()
	_, err := c.Get(context.Background(), url)
	if err == nil {
		t.Fatal("expected a transport error from a closed server")
	}
	// Three attempts with ~1-2-4ms backoff should still be quick.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("retry loop took %v; backoff not bounded", d)
	}
}

func TestFourXXNotRetried(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if hits.Load() != 1 {
		t.Fatalf("a 400 was retried: %d hits", hits.Load())
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	var firstTwo [2]time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= 2 {
			firstTwo[n-1] = time.Now()
		}
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	// BaseDelay of a microsecond: if the gap between attempts is near a
	// second, the client slept the server's Retry-After, not its own
	// backoff.
	c := New(Config{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxRetryAfter: 2 * time.Second, Seed: 1})
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	resp.Body.Close()
	if gap := firstTwo[1].Sub(firstTwo[0]); gap < 500*time.Millisecond {
		t.Fatalf("gap between attempts %v; Retry-After: 1 was not honored", gap)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := New(Config{MaxAttempts: 5, MaxRetryAfter: time.Minute, Seed: 1})
	start := time.Now()
	_, err := c.Get(ctx, ts.URL)
	if err == nil {
		t.Fatal("expected a context error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancellation took %v; the backoff sleep ignored the context", d)
	}
}
