// Package httpretry is the repo's shared retrying HTTP client: bounded
// attempts with jittered exponential backoff on connection errors and
// retryable statuses (429, 502, 503, 504), honoring the server's own
// Retry-After header — a prmserved protective 503 says exactly how long
// to stay away, and a client that sleeps its own fixed delay instead
// either hammers a shedding server or wastes time it was not asked to
// wait. prmquery's -server mode and the prmgate rollout path both speak
// to prmserved through this client.
package httpretry

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Config tunes a Client. Every zero field gets a default from New.
type Config struct {
	// MaxAttempts bounds the total tries per request (default 3).
	MaxAttempts int
	// BaseDelay is the backoff after the first failure; each further
	// failure doubles it (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// JitterFrac randomizes each delay by ±this fraction (default 0.2),
	// so a fleet of clients retrying a recovering server decorrelates.
	JitterFrac float64
	// MaxRetryAfter caps how long an honored Retry-After header may hold
	// the client (default 5s) — a server asking for minutes is answered
	// by giving up after the attempt budget instead.
	MaxRetryAfter time.Duration
	// Client is the underlying transport (default: http.Client with a
	// 10s timeout).
	Client *http.Client
	// Seed drives the jitter draw (0 seeds from the clock).
	Seed int64
}

// Client retries idempotent-shaped requests. All methods are safe for
// concurrent use.
type Client struct {
	cfg Config
	hc  *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New builds a Client from cfg with defaults applied.
func New(cfg Config) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.JitterFrac <= 0 {
		cfg.JitterFrac = 0.2
	}
	if cfg.MaxRetryAfter <= 0 {
		cfg.MaxRetryAfter = 5 * time.Second
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{cfg: cfg, hc: hc, rng: rand.New(rand.NewSource(seed))}
}

// Retryable reports whether a response status is worth retrying: the
// server refused this attempt but another may land (pushback and
// gateway failures), as opposed to a 4xx/5xx that will repeat.
func Retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// RetryAfter parses a response's Retry-After header as delay seconds
// (the only form prmserved emits), reporting ok=false when absent or
// not a positive integer.
func RetryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs <= 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// Do sends the request, retrying connection errors and retryable
// statuses up to MaxAttempts. A request with a body must carry GetBody
// (as Post arranges) or it is sent exactly once. The returned response
// is the last attempt's; earlier retryable responses are drained and
// closed so their connections are reused.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := c.hc.Do(req)
		retryAfter := time.Duration(0)
		if err != nil {
			lastErr = err
		} else if !Retryable(resp.StatusCode) {
			return resp, nil
		} else {
			lastErr = fmt.Errorf("httpretry: server returned %s", resp.Status)
			if d, ok := RetryAfter(resp); ok {
				retryAfter = d
			}
		}
		// Out of attempts, or a one-shot body: hand back what we have.
		canRebuild := req.Body == nil || req.GetBody != nil
		if attempt >= c.cfg.MaxAttempts || !canRebuild || req.Context().Err() != nil {
			if err != nil {
				return nil, lastErr
			}
			return resp, nil
		}
		if err == nil {
			// Reuse the connection for the retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		if err := c.sleep(req.Context(), c.delay(attempt, retryAfter)); err != nil {
			return nil, fmt.Errorf("httpretry: %w (after: %v)", err, lastErr)
		}
		if req.GetBody != nil {
			body, berr := req.GetBody()
			if berr != nil {
				return nil, fmt.Errorf("httpretry: rebuild request body: %w", berr)
			}
			req.Body = body
		}
	}
}

// Post sends a JSON-ish POST whose body is a byte slice, which makes it
// safely replayable across retries.
func (c *Client) Post(ctx context.Context, url, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.GetBody = func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(body)), nil
	}
	return c.Do(req)
}

// Get sends a GET with retries.
func (c *Client) Get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// delay picks the wait before the next attempt: the server's Retry-After
// when it gave one (capped at MaxRetryAfter), the jittered exponential
// backoff otherwise.
func (c *Client) delay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.cfg.MaxRetryAfter {
			retryAfter = c.cfg.MaxRetryAfter
		}
		return retryAfter
	}
	d := c.cfg.BaseDelay
	for i := 1; i < attempt && d < c.cfg.MaxDelay; i++ {
		d *= 2
	}
	if d > c.cfg.MaxDelay {
		d = c.cfg.MaxDelay
	}
	c.mu.Lock()
	d += time.Duration((c.rng.Float64()*2 - 1) * c.cfg.JitterFrac * float64(d))
	c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
