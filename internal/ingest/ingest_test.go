package ingest

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prmsel/internal/core"
	"prmsel/internal/dataset"
	"prmsel/internal/learn"
	"prmsel/internal/query"
	"prmsel/internal/store"
)

// testDB builds a two-table database: Person(Income, Owner) referenced by
// Purchase(Amount) through Buyer.
func testDB(t testing.TB, nPeople, nPurch int, seed int64) *dataset.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	person := dataset.NewTable(dataset.Schema{
		Name: "Person",
		Attributes: []dataset.Attribute{
			{Name: "Income", Values: []string{"low", "high"}},
			{Name: "Owner", Values: []string{"no", "yes"}},
		},
	})
	for i := 0; i < nPeople; i++ {
		person.MustAppendRow([]int32{int32(rng.Intn(2)), int32(rng.Intn(2))}, nil)
	}
	purch := dataset.NewTable(dataset.Schema{
		Name: "Purchase",
		Attributes: []dataset.Attribute{
			{Name: "Amount", Values: []string{"small", "large"}},
		},
		ForeignKeys: []dataset.ForeignKey{{Name: "Buyer", To: "Person"}},
	})
	for i := 0; i < nPurch; i++ {
		purch.MustAppendRow([]int32{int32(rng.Intn(2))}, []int32{int32(rng.Intn(nPeople))})
	}
	db := dataset.NewDatabase()
	for _, tbl := range []*dataset.Table{person, purch} {
		if err := db.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func learnModel(t testing.TB, db *dataset.Database) *core.PRM {
	t.Helper()
	m, err := core.Learn(db, core.Config{
		Fit:    learn.FitConfig{Kind: learn.Tree},
		Search: learn.Options{Criterion: learn.SSN, BudgetBytes: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func openTestWAL(t testing.TB, dir string) *store.WAL {
	t.Helper()
	w, _, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func newIngestor(t testing.TB, cfg Config) *Ingestor {
	t.Helper()
	ing, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	return ing
}

// randRows draws valid rows against the current staging sizes, including
// intra-batch references.
func randRows(rng *rand.Rand, nPeople int, n int) []Row {
	var out []Row
	people := nPeople
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			out = append(out, Row{Table: "Person", Attrs: []int32{int32(rng.Intn(2)), int32(rng.Intn(2))}})
			people++
		} else {
			out = append(out, Row{Table: "Purchase", Attrs: []int32{int32(rng.Intn(2))}, FKs: []int32{int32(rng.Intn(people))}})
		}
	}
	return out
}

func TestIngestValidation(t *testing.T) {
	db := testDB(t, 20, 40, 1)
	m := learnModel(t, db)
	w := openTestWAL(t, t.TempDir())
	ing := newIngestor(t, Config{Model: m, DB: db, WAL: w, RefitRows: -1})

	cases := map[string][]Row{
		"unknown table":  {{Table: "Nope", Attrs: []int32{0}}},
		"attr arity":     {{Table: "Person", Attrs: []int32{0}}},
		"fk arity":       {{Table: "Purchase", Attrs: []int32{0}}},
		"attr domain":    {{Table: "Person", Attrs: []int32{0, 9}}},
		"fk range":       {{Table: "Purchase", Attrs: []int32{0}, FKs: []int32{99}}},
		"fk negative":    {{Table: "Purchase", Attrs: []int32{0}, FKs: []int32{-1}}},
		"fk future self": {{Table: "Purchase", Attrs: []int32{0}, FKs: []int32{20}}},
	}
	for name, rows := range cases {
		if _, err := ing.Ingest(rows); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if w.LastSeq() != 0 {
		t.Fatalf("rejected batches reached the WAL: last seq %d", w.LastSeq())
	}
	// A parent and its child in one batch: the child may reference the
	// parent's future row index.
	batch := []Row{
		{Table: "Person", Attrs: []int32{1, 1}},
		{Table: "Purchase", Attrs: []int32{1}, FKs: []int32{20}}, // the row above
	}
	if _, err := ing.Ingest(batch); err != nil {
		t.Fatalf("intra-batch reference rejected: %v", err)
	}
	if db.Table("Person").Len() != 21 || db.Table("Purchase").Len() != 41 {
		t.Fatalf("batch not applied: %d/%d rows", db.Table("Person").Len(), db.Table("Purchase").Len())
	}
}

func TestIngestBacklogAdmission(t *testing.T) {
	db := testDB(t, 20, 40, 2)
	m := learnModel(t, db)
	w := openTestWAL(t, t.TempDir())
	ing := newIngestor(t, Config{Model: m, DB: db, WAL: w, RefitRows: -1, MaxPending: 3})

	row := Row{Table: "Person", Attrs: []int32{0, 0}}
	for i := 0; i < 3; i++ {
		if _, err := ing.Ingest([]Row{row}); err != nil {
			t.Fatalf("ingest %d: %v", i, err)
		}
	}
	if _, err := ing.Ingest([]Row{row}); !errors.Is(err, ErrBacklog) {
		t.Fatalf("full backlog returned %v, want ErrBacklog", err)
	}
	// A successful refit drains the backlog.
	if err := ing.Refit("test"); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Ingest([]Row{row}); err != nil {
		t.Fatalf("ingest after refit: %v", err)
	}
}

// TestRefitPublishesConsistentClone: the publication carries an immutable
// database clone at the refit watermark, and its model estimates match a
// scratch scan-refit over the same rows bit-for-bit.
func TestRefitPublishesConsistentClone(t *testing.T) {
	db := testDB(t, 60, 200, 3)
	m := learnModel(t, db)

	// An independent structural copy refit by full rescan, for comparison.
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	scratch, err := core.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	refDB := testDB(t, 60, 200, 3) // same seed: identical base rows

	w := openTestWAL(t, t.TempDir())
	var pubs []Publication
	ing := newIngestor(t, Config{
		Model: m, DB: db, WAL: w, RefitRows: -1,
		Publish: func(p Publication) error { pubs = append(pubs, p); return nil },
	})

	rng := rand.New(rand.NewSource(9))
	rows := randRows(rng, 60, 300)
	var acked int
	for i := 0; i < len(rows); i += 32 {
		end := i + 32
		if end > len(rows) {
			end = len(rows)
		}
		if _, err := ing.Ingest(rows[i:end]); err != nil {
			t.Fatal(err)
		}
		acked += end - i
	}
	for _, r := range rows {
		if err := refDB.Table(r.Table).AppendRow(r.Attrs, r.FKs); err != nil {
			t.Fatal(err)
		}
	}

	if err := ing.Refit("test"); err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 1 {
		t.Fatalf("%d publications, want 1", len(pubs))
	}
	pub := pubs[0]
	if pub.Trigger != "test" || pub.Rows != int64(acked) || pub.Watermark != w.LastSeq() {
		t.Fatalf("publication = %+v (acked %d, last seq %d)", pub, acked, w.LastSeq())
	}
	if pending, _, published := ing.Pending(); pending != 0 || published != pub.Watermark {
		t.Fatalf("after refit: pending %d published %d", pending, published)
	}
	// The clone is immutable: later ingests must not grow it.
	cloneRows := pub.DB.Rows()
	if _, err := ing.Ingest([]Row{{Table: "Person", Attrs: []int32{0, 0}}}); err != nil {
		t.Fatal(err)
	}
	if pub.DB.Rows() != cloneRows {
		t.Fatal("published clone grew with later ingest")
	}

	if err := scratch.RefitParameters(refDB); err != nil {
		t.Fatal(err)
	}
	queries := []*query.Query{
		query.New().Over("p", "Person").WhereEq("p", "Income", 1),
		query.New().Over("u", "Purchase").WhereEq("u", "Amount", 1),
		query.New().Over("u", "Purchase").Over("p", "Person").
			KeyJoin("u", "Buyer", "p").WhereEq("p", "Income", 1).WhereEq("u", "Amount", 1),
	}
	for i, q := range queries {
		a, err := pub.Model.EstimateCount(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scratch.EstimateCount(q)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: delta-refit estimate %v != scan-refit %v", i, a, b)
		}
	}
}

func TestRefitNoOpWhenNothingPending(t *testing.T) {
	db := testDB(t, 20, 40, 4)
	m := learnModel(t, db)
	w := openTestWAL(t, t.TempDir())
	calls := 0
	ing := newIngestor(t, Config{
		Model: m, DB: db, WAL: w, RefitRows: -1,
		Publish: func(Publication) error { calls++; return nil },
	})
	if err := ing.Refit("idle"); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("idle refit published %d times", calls)
	}
}

func TestRefitRowThresholdTriggers(t *testing.T) {
	db := testDB(t, 20, 40, 5)
	m := learnModel(t, db)
	w := openTestWAL(t, t.TempDir())
	done := make(chan Publication, 4)
	ing := newIngestor(t, Config{
		Model: m, DB: db, WAL: w, RefitRows: 8,
		Publish: func(p Publication) error { done <- p; return nil },
	})
	for i := 0; i < 8; i++ {
		if _, err := ing.Ingest([]Row{{Table: "Person", Attrs: []int32{0, 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case p := <-done:
		if p.Trigger != "rows" {
			t.Fatalf("trigger = %q, want rows", p.Trigger)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("row threshold never triggered a refit")
	}
}

func TestSkipRefitDefers(t *testing.T) {
	db := testDB(t, 20, 40, 6)
	m := learnModel(t, db)
	w := openTestWAL(t, t.TempDir())
	var mu sync.Mutex
	skip := true
	calls := 0
	ing := newIngestor(t, Config{
		Model: m, DB: db, WAL: w, RefitRows: -1,
		SkipRefit: func() bool { mu.Lock(); defer mu.Unlock(); return skip },
		Publish:   func(Publication) error { mu.Lock(); defer mu.Unlock(); calls++; return nil },
	})
	if _, err := ing.Ingest([]Row{{Table: "Person", Attrs: []int32{1, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Refit("blocked"); !errors.Is(err, ErrRefitDeferred) {
		t.Fatalf("Refit while blocked = %v, want ErrRefitDeferred", err)
	}
	mu.Lock()
	c := calls
	skip = false
	mu.Unlock()
	if c != 0 {
		t.Fatal("refit ran while SkipRefit was true")
	}
	if err := ing.Refit("unblocked"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("refit after unblock published %d times", calls)
	}
}

func TestSnapshotAdoptMarkPublished(t *testing.T) {
	db := testDB(t, 40, 120, 7)
	m := learnModel(t, db)
	w := openTestWAL(t, t.TempDir())
	ing := newIngestor(t, Config{Model: m, DB: db, WAL: w, RefitRows: -1})
	rng := rand.New(rand.NewSource(2))
	if _, err := ing.Ingest(randRows(rng, 40, 50)); err != nil {
		t.Fatal(err)
	}

	snap, wm, appliedAt := ing.SnapshotDB()
	if snap.Rows() != db.Rows() {
		t.Fatalf("snapshot has %d rows, staging %d", snap.Rows(), db.Rows())
	}
	// A rebuild learned on the snapshot adopts cleanly and the bookkeeping
	// marks its rows published.
	rebuilt := learnModel(t, snap)
	if err := ing.Adopt(rebuilt); err != nil {
		t.Fatal(err)
	}
	ing.MarkPublished(wm, appliedAt)
	if pending, _, published := ing.Pending(); pending != 0 || published != wm {
		t.Fatalf("after adopt: pending %d published %d want 0/%d", pending, published, wm)
	}
	// Stale MarkPublished must not roll the watermark back.
	ing.MarkPublished(wm-1, 0)
	if pending, _, published := ing.Pending(); pending != 0 || published != wm {
		t.Fatalf("stale mark rolled back: pending %d published %d", pending, published)
	}
	// The adopted model keeps refitting from the new statistics.
	if _, err := ing.Ingest([]Row{{Table: "Person", Attrs: []int32{0, 0}}}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Refit("post-adopt"); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRebuildsDatabase(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t, 30, 90, 8)
	m := learnModel(t, db)
	w := openTestWAL(t, dir)
	ing := newIngestor(t, Config{Model: m, DB: db, WAL: w, RefitRows: -1})
	rng := rand.New(rand.NewSource(4))
	all := randRows(rng, 30, 120)
	for i := 0; i < len(all); i += 16 {
		end := i + 16
		if end > len(all) {
			end = len(all)
		}
		if _, err := ing.Ingest(all[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	finalRows := db.Rows()
	last := w.LastSeq()
	ing.Close()
	w.Close()

	// Cold start: base dataset + full replay reproduces the staging DB.
	w2 := openTestWAL(t, dir)
	base := testDB(t, 30, 90, 8)
	n, seq, err := Replay(base, w2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(all) || seq != last {
		t.Fatalf("replayed %d rows to seq %d, want %d rows to %d", n, seq, len(all), last)
	}
	if base.Rows() != finalRows {
		t.Fatalf("replayed database has %d rows, staging had %d", base.Rows(), finalRows)
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("replayed database invalid: %v", err)
	}
}

// TestReplayFromWatermark: replay onto a recovered state skips records the
// state already reflects and applies only the newer ones.
func TestReplayFromWatermark(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t, 30, 0, 9)
	m := learnModel(t, db)
	w := openTestWAL(t, dir)
	ing := newIngestor(t, Config{Model: m, DB: db, WAL: w, RefitRows: -1})
	for i := 0; i < 5; i++ {
		if _, err := ing.Ingest([]Row{{Table: "Person", Attrs: []int32{int32(i % 2), 0}}}); err != nil {
			t.Fatal(err)
		}
	}
	ing.Close()
	w.Close()

	w2 := openTestWAL(t, dir)
	// The "snapshot state" as of watermark 2: base + the first two rows.
	state := testDB(t, 30, 0, 9)
	state.Table("Person").MustAppendRow([]int32{0, 0}, nil)
	state.Table("Person").MustAppendRow([]int32{1, 0}, nil)
	n, last, err := Replay(state, w2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || last != 5 {
		t.Fatalf("replayed %d rows to seq %d, want 3 to 5", n, last)
	}
	if state.Table("Person").Len() != 35 {
		t.Fatalf("state has %d persons, want 35", state.Table("Person").Len())
	}
}
