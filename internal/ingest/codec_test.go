package ingest

import (
	"bytes"
	"testing"
)

func sampleRows() []Row {
	return []Row{
		{Table: "Person", Attrs: []int32{1, 0}},
		{Table: "Purchase", Attrs: []int32{1}, FKs: []int32{7}},
		{Table: "Purchase", Attrs: []int32{0}, FKs: []int32{0}},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	rows := sampleRows()
	b, err := EncodeBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i, r := range rows {
		g := got[i]
		if g.Table != r.Table || len(g.Attrs) != len(r.Attrs) || len(g.FKs) != len(r.FKs) {
			t.Fatalf("row %d: %+v != %+v", i, g, r)
		}
		for j := range r.Attrs {
			if g.Attrs[j] != r.Attrs[j] {
				t.Fatalf("row %d attr %d: %d != %d", i, j, g.Attrs[j], r.Attrs[j])
			}
		}
		for j := range r.FKs {
			if g.FKs[j] != r.FKs[j] {
				t.Fatalf("row %d fk %d: %d != %d", i, j, g.FKs[j], r.FKs[j])
			}
		}
	}
}

func TestEncodeBatchRejectsBadInput(t *testing.T) {
	if _, err := EncodeBatch(nil); err == nil {
		t.Fatal("empty batch encoded")
	}
	if _, err := EncodeBatch(make([]Row, MaxBatchRows+1)); err == nil {
		t.Fatal("oversized batch encoded")
	}
	if _, err := EncodeBatch([]Row{{Table: ""}}); err == nil {
		t.Fatal("empty table name encoded")
	}
}

func TestDecodeBatchRejectsCorruptFrames(t *testing.T) {
	good, err := EncodeBatch(sampleRows())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   good[:3],
		"truncated row":  good[:len(good)-2],
		"trailing bytes": append(append([]byte(nil), good...), 0),
		"zero count":     {0, 0, 0, 0},
		"huge count":     {0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, err := DecodeBatch(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzIngestRecord drives arbitrary bytes through the WAL record decoder:
// it must never panic, and anything it accepts must survive a
// re-encode/re-decode round trip unchanged.
func FuzzIngestRecord(f *testing.F) {
	if seed, err := EncodeBatch(sampleRows()); err == nil {
		f.Add(seed)
	}
	if seed, err := EncodeBatch([]Row{{Table: "T", Attrs: []int32{0}}}); err == nil {
		f.Add(seed)
	}
	f.Add([]byte{1, 0, 0, 0, 1, 'T', 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		rows, err := DecodeBatch(b)
		if err != nil {
			return
		}
		re, err := EncodeBatch(rows)
		if err != nil {
			t.Fatalf("decoded batch failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("round trip changed bytes:\n in  %x\n out %x", b, re)
		}
	})
}
