package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"prmsel/internal/faults"
	"prmsel/internal/store"
)

// TestCrashDuringIngestLosesNoAckedRow simulates the kill-mid-ingest
// scenario with fault injection: a batch torn mid-append is never
// acknowledged and never replayed, while every acknowledged batch
// survives the "restart" (reopen + replay) exactly once.
func TestCrashDuringIngestLosesNoAckedRow(t *testing.T) {
	for _, point := range []string{"store.wal.append", "store.wal.fsync"} {
		t.Run(point, func(t *testing.T) {
			faults.Reset()
			t.Cleanup(faults.Reset)
			dir := t.TempDir()
			db := testDB(t, 30, 60, 10)
			m := learnModel(t, db)
			w := openTestWAL(t, dir)
			ing := newIngestor(t, Config{Model: m, DB: db, WAL: w, RefitRows: -1})

			// Acknowledge a few batches, then tear one mid-write.
			var acked []Row
			for i := 0; i < 4; i++ {
				batch := []Row{{Table: "Person", Attrs: []int32{int32(i % 2), 1}}}
				if _, err := ing.Ingest(batch); err != nil {
					t.Fatalf("ingest %d: %v", i, err)
				}
				acked = append(acked, batch...)
			}
			faults.Set(point, faults.Fault{Err: fmt.Errorf("injected crash"), Times: 1})
			torn := []Row{{Table: "Person", Attrs: []int32{1, 1}}}
			if _, err := ing.Ingest(torn); err == nil {
				t.Fatal("torn batch was acknowledged")
			}
			// The write path is down until restart, like a crashed process.
			if _, err := ing.Ingest(torn); !errors.Is(err, store.ErrWALBroken) {
				t.Fatalf("ingest on broken WAL: %v, want ErrWALBroken", err)
			}
			ing.Close()
			w.Close()

			// "Restart": reopen the log, replay onto the base dataset.
			w2, info, err := store.OpenWAL(dir, store.WALOptions{})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer w2.Close()
			// An acked batch must never be lost. The unacked one may or may
			// not have reached the disk (its bytes were written before the
			// failed fsync) — both outcomes are legal; the client saw no ack
			// and must treat its fate as unknown. What is never legal is a
			// torn (partially written) record surviving as data.
			if info.Records < 4 || info.Records > 5 {
				t.Fatalf("reopen found %d records, want 4 acked (+ at most 1 unacked), info %+v", info.Records, info)
			}
			base := testDB(t, 30, 60, 10)
			n, last, err := Replay(base, w2, 0)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if n < len(acked) {
				t.Fatalf("replayed %d rows, acked %d were lost", n, len(acked))
			}
			if last != uint64(info.Records) {
				t.Fatalf("replay ended at seq %d, want %d", last, info.Records)
			}
			if base.Table("Person").Len() != 30+n {
				t.Fatalf("recovered %d persons, want %d", base.Table("Person").Len(), 30+n)
			}
			// The ingest path works again on the reopened log.
			m2 := learnModel(t, base)
			ing2, err := New(Config{Model: m2, DB: base, WAL: w2, RefitRows: -1, Pending: int64(n), Watermark: 0})
			if err != nil {
				t.Fatal(err)
			}
			defer ing2.Close()
			if seq, err := ing2.Ingest(torn); err != nil || seq != uint64(info.Records)+1 {
				t.Fatalf("ingest after recovery: seq=%d err=%v", seq, err)
			}
		})
	}
}

// TestRefitFaultLeavesRowsPending: an injected refit failure keeps the
// rows pending; the next refit publishes them.
func TestRefitFaultLeavesRowsPending(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	db := testDB(t, 20, 40, 11)
	m := learnModel(t, db)
	w := openTestWAL(t, t.TempDir())
	pubs := 0
	ing := newIngestor(t, Config{
		Model: m, DB: db, WAL: w, RefitRows: -1,
		Publish: func(Publication) error { pubs++; return nil },
	})
	if _, err := ing.Ingest([]Row{{Table: "Person", Attrs: []int32{0, 1}}}); err != nil {
		t.Fatal(err)
	}
	faults.Set("ingest.refit", faults.Fault{Err: fmt.Errorf("injected"), Times: 1})
	if err := ing.Refit("faulted"); err == nil {
		t.Fatal("injected refit fault did not surface")
	}
	if pending, _, _ := ing.Pending(); pending != 1 {
		t.Fatalf("pending = %d after failed refit, want 1", pending)
	}
	if err := ing.Refit("retry"); err != nil {
		t.Fatal(err)
	}
	if pending, _, _ := ing.Pending(); pending != 0 || pubs != 1 {
		t.Fatalf("after retry: pending %d, %d publications", pending, pubs)
	}
}

// TestConcurrentIngestAndRefit hammers the write path from many
// goroutines with refits and snapshots interleaved — the -race target's
// main ingest workout. Every acknowledged row must be in the staging
// database and in the WAL afterwards.
func TestConcurrentIngestAndRefit(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t, 50, 100, 12)
	m := learnModel(t, db)
	w := openTestWAL(t, dir)
	var pubMu sync.Mutex
	var lastPub Publication
	ing := newIngestor(t, Config{
		Model: m, DB: db, WAL: w, RefitRows: 64,
		Publish: func(p Publication) error {
			pubMu.Lock()
			defer pubMu.Unlock()
			lastPub = p
			return nil
		},
	})

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	var ackMu sync.Mutex
	acked := 0
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < perWorker; i++ {
				// Person-only rows keep batches valid regardless of
				// interleaving (purchase FKs would race on table growth).
				batch := []Row{{Table: "Person", Attrs: []int32{int32(rng.Intn(2)), int32(rng.Intn(2))}}}
				if _, err := ing.Ingest(batch); err != nil {
					t.Errorf("worker %d ingest %d: %v", g, i, err)
					return
				}
				ackMu.Lock()
				acked++
				ackMu.Unlock()
				if i%16 == 0 {
					ing.TriggerRefit("stress")
				}
				if i%10 == 0 {
					snap, _, _ := ing.SnapshotDB()
					if err := snap.Validate(); err != nil {
						t.Errorf("worker %d: snapshot invalid: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := ing.Refit("final"); err != nil {
		t.Fatal(err)
	}
	want := 50 + workers*perWorker
	if got := db.Table("Person").Len(); got != want {
		t.Fatalf("staging has %d persons, want %d", got, want)
	}
	pubMu.Lock()
	pub := lastPub
	pubMu.Unlock()
	if pub.DB == nil || pub.DB.Table("Person").Len() != want {
		t.Fatalf("final publication incomplete: %+v", pub)
	}
	ing.Close()
	w.Close()

	// Every acknowledged row is durable: full replay reproduces the count.
	w2, _, err := store.OpenWAL(dir, store.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	base := testDB(t, 50, 100, 12)
	n, _, err := Replay(base, w2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != workers*perWorker {
		t.Fatalf("replayed %d rows, acked %d", n, workers*perWorker)
	}
}
