package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"prmsel/internal/core"
	"prmsel/internal/dataset"
	"prmsel/internal/faults"
	"prmsel/internal/store"
)

// ErrBacklog reports that the unpublished-row backlog is full — the
// admission-control signal the HTTP layer maps to 429. Ingest faster than
// refit can absorb must push back, not grow without bound.
var ErrBacklog = errors.New("ingest: refit backlog full")

// ErrRefitDeferred reports that a refit attempt did not run because
// SkipRefit declined it (a rebuild is in flight, or a circuit breaker
// holds the path). The pending rows stay staged; a later trigger will
// pick them up.
var ErrRefitDeferred = errors.New("ingest: refit deferred")

// Publication is one refit's output, handed to the publish callback: the
// refit model, an immutable clone of the staging database, and the WAL
// watermark the clone reflects. The callback persists a new snapshot
// generation and truncates the WAL through Watermark; returning an error
// leaves the rows pending for the next refit.
type Publication struct {
	Model     *core.PRM
	DB        *dataset.Database
	Watermark uint64
	Rows      int64
	Trigger   string
}

// Config assembles an Ingestor.
type Config struct {
	// Model is the PRM whose parameters the refits maintain.
	Model *core.PRM
	// DB is the mutable staging database; ownership transfers to the
	// ingestor (all further access through its methods).
	DB *dataset.Database
	// WAL is the open write-ahead log; appended rows are acknowledged only
	// after its fsync.
	WAL *store.WAL
	// Watermark is the WAL sequence number already reflected in a
	// persisted snapshot (rows past it count as pending).
	Watermark uint64
	// Pending is how many applied-but-unpublished rows DB already holds —
	// the WAL replay count at cold start.
	Pending int64
	// RefitRows triggers a refit once this many rows are pending
	// (default 1024; negative disables the threshold trigger).
	RefitRows int
	// RefitInterval triggers periodic refits (0 disables).
	RefitInterval time.Duration
	// MaxPending bounds the unpublished backlog (default 65536; negative
	// disables admission control).
	MaxPending int
	// Publish persists one refit's output; nil skips persistence (tests).
	Publish func(pub Publication) error
	// SkipRefit, when set and true, defers a refit attempt — the serve
	// layer uses it to keep refits from racing a full structure rebuild.
	SkipRefit func() bool
	// OnIngest and OnRefit feed metrics; either may be nil.
	OnIngest func(rows int, walBytes int)
	OnRefit  func(d time.Duration, err error)
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

// Ingestor owns a model's write path: WAL-acknowledged row ingestion into
// a private staging database, incremental sufficient statistics, and a
// background refit loop driven by row-count threshold, wall-clock
// interval, and external triggers (the drift watchdog). Safe for
// concurrent use.
type Ingestor struct {
	cfg Config

	mu        sync.Mutex // guards db, stats, model pointer, counters
	model     *core.PRM
	db        *dataset.Database
	stats     *core.ModelStats
	lastSeq   uint64 // last acked WAL sequence applied to db
	published uint64 // watermark of the last successful publication
	applied   int64  // cumulative rows applied since New
	pubRows   int64  // `applied` as of the last successful publication
	closed    bool

	refitMu sync.Mutex // serializes refit runs
	refitc  chan string
	stopc   chan struct{}
	wg      sync.WaitGroup
}

// New builds the ingestor: one scan of the staging database constructs
// the model's sufficient statistics, then the refit loop starts.
func New(cfg Config) (*Ingestor, error) {
	if cfg.Model == nil || cfg.DB == nil || cfg.WAL == nil {
		return nil, errors.New("ingest: Config needs Model, DB, and WAL")
	}
	if cfg.RefitRows == 0 {
		cfg.RefitRows = 1024
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 1 << 16
	}
	stats, err := cfg.Model.BuildStats(cfg.DB)
	if err != nil {
		return nil, fmt.Errorf("ingest: build stats: %w", err)
	}
	ing := &Ingestor{
		cfg:       cfg,
		model:     cfg.Model,
		db:        cfg.DB,
		stats:     stats,
		lastSeq:   cfg.WAL.LastSeq(),
		published: cfg.Watermark,
		applied:   cfg.Pending,
		refitc:    make(chan string, 1),
		stopc:     make(chan struct{}),
	}
	ing.wg.Add(1)
	go ing.loop()
	return ing, nil
}

// loop drains refit triggers until Close.
func (ing *Ingestor) loop() {
	defer ing.wg.Done()
	var tick <-chan time.Time
	if ing.cfg.RefitInterval > 0 {
		t := time.NewTicker(ing.cfg.RefitInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ing.stopc:
			return
		case reason := <-ing.refitc:
			ing.runRefit(reason)
		case <-tick:
			ing.runRefit("interval")
		}
	}
}

// validateRows checks a batch against the staging schema before anything
// is logged: tables must exist, codes must be in domain, and foreign-key
// references must land inside the referenced table — where "inside"
// includes rows earlier in the same batch, so a batch can insert a parent
// and its children together.
func validateRows(db *dataset.Database, rows []Row) error {
	grown := make(map[string]int)
	for i, r := range rows {
		t := db.Table(r.Table)
		if t == nil {
			return fmt.Errorf("ingest: row %d: unknown table %q", i, r.Table)
		}
		if len(r.Attrs) != len(t.Attributes) {
			return fmt.Errorf("ingest: row %d: table %s needs %d attributes, got %d", i, r.Table, len(t.Attributes), len(r.Attrs))
		}
		if len(r.FKs) != len(t.ForeignKeys) {
			return fmt.Errorf("ingest: row %d: table %s needs %d foreign keys, got %d", i, r.Table, len(t.ForeignKeys), len(r.FKs))
		}
		for j, v := range r.Attrs {
			if v < 0 || int(v) >= t.Attributes[j].Card() {
				return fmt.Errorf("ingest: row %d: attribute %s.%s code %d out of domain [0,%d)",
					i, r.Table, t.Attributes[j].Name, v, t.Attributes[j].Card())
			}
		}
		for j, ref := range r.FKs {
			target := db.Table(t.ForeignKeys[j].To)
			limit := target.Len() + grown[t.ForeignKeys[j].To]
			if ref < 0 || int(ref) >= limit {
				return fmt.Errorf("ingest: row %d: foreign key %s.%s reference %d out of range [0,%d)",
					i, r.Table, t.ForeignKeys[j].Name, ref, limit)
			}
		}
		grown[r.Table]++
	}
	return nil
}

// applyRow appends one validated row and folds it into the statistics.
func applyRow(db *dataset.Database, stats *core.ModelStats, r Row) error {
	t := db.Table(r.Table)
	if err := t.AppendRow(r.Attrs, r.FKs); err != nil {
		return err
	}
	return stats.ApplyInsert(db, r.Table, t.Len()-1)
}

// Ingest durably ingests one validated batch. The returned sequence
// number is the batch's WAL position; when err is nil the batch is
// acknowledged — fsynced in the log and folded into the staging database
// and statistics. A full backlog returns ErrBacklog without logging
// anything.
func (ing *Ingestor) Ingest(rows []Row) (seq uint64, err error) {
	if len(rows) == 0 {
		return 0, errors.New("ingest: empty batch")
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if ing.closed {
		return 0, errors.New("ingest: closed")
	}
	if ing.cfg.MaxPending > 0 && ing.applied-ing.pubRows+int64(len(rows)) > int64(ing.cfg.MaxPending) {
		return 0, ErrBacklog
	}
	if err := validateRows(ing.db, rows); err != nil {
		return 0, err
	}
	payload, err := EncodeBatch(rows)
	if err != nil {
		return 0, err
	}
	seq, err = ing.cfg.WAL.Append(payload)
	if err != nil {
		return 0, err
	}
	// The batch is durable; validation guarantees the applies succeed.
	for _, r := range rows {
		if err := applyRow(ing.db, ing.stats, r); err != nil {
			return 0, fmt.Errorf("ingest: apply acknowledged row: %w", err)
		}
	}
	ing.lastSeq = seq
	ing.applied += int64(len(rows))
	if ing.cfg.OnIngest != nil {
		ing.cfg.OnIngest(len(rows), len(payload))
	}
	if ing.cfg.RefitRows > 0 && ing.applied-ing.pubRows >= int64(ing.cfg.RefitRows) {
		ing.triggerLocked("rows")
	}
	return seq, nil
}

// TriggerRefit asks the loop for a refit (non-blocking; coalesces with a
// pending trigger). The drift watchdog's hook.
func (ing *Ingestor) TriggerRefit(reason string) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if !ing.closed {
		ing.triggerLocked(reason)
	}
}

func (ing *Ingestor) triggerLocked(reason string) {
	select {
	case ing.refitc <- reason:
	default:
	}
}

// runRefit wraps one refit attempt with metrics and logging. A deferred
// refit (SkipRefit said not now) is reported to no one: it is neither a
// success nor a failure of the refit path, and feeding it to OnRefit
// would let a breaker or metric mistake "didn't run" for "ran fine".
func (ing *Ingestor) runRefit(reason string) {
	start := time.Now()
	err := ing.Refit(reason)
	if errors.Is(err, ErrRefitDeferred) {
		return
	}
	if ing.cfg.OnRefit != nil {
		ing.cfg.OnRefit(time.Since(start), err)
	}
	if err != nil && ing.cfg.Logf != nil {
		ing.cfg.Logf("ingest: refit (%s): %v", reason, err)
	}
}

// Refit synchronously runs one refit-and-publish cycle: re-estimate the
// CPDs from the maintained statistics (O(delta-derived), no scan), clone
// the staging database, and hand both to the publish callback. Nothing
// pending is a no-op. Refit runs are serialized; ingestion continues
// concurrently while the publish callback persists.
func (ing *Ingestor) Refit(reason string) error {
	ing.refitMu.Lock()
	defer ing.refitMu.Unlock()
	if ing.cfg.SkipRefit != nil && ing.cfg.SkipRefit() {
		return ErrRefitDeferred
	}
	if ferr := faults.Inject("ingest.refit"); ferr != nil {
		return fmt.Errorf("ingest: refit: %w", ferr)
	}
	ing.mu.Lock()
	if ing.applied == ing.pubRows {
		ing.mu.Unlock()
		return nil
	}
	model := ing.model
	if err := model.RefitFromStats(ing.stats); err != nil {
		ing.mu.Unlock()
		return err
	}
	pub := Publication{
		Model:     model,
		DB:        ing.db.Clone(),
		Watermark: ing.lastSeq,
		Rows:      ing.applied - ing.pubRows,
		Trigger:   reason,
	}
	appliedAtClone := ing.applied
	ing.mu.Unlock()

	if ing.cfg.Publish != nil {
		if err := ing.cfg.Publish(pub); err != nil {
			return err
		}
	}
	ing.mu.Lock()
	ing.published = pub.Watermark
	ing.pubRows = appliedAtClone
	ing.mu.Unlock()
	return nil
}

// SnapshotDB returns an immutable clone of the staging database, the WAL
// watermark it reflects, and the cumulative applied-row count at clone
// time — the data source for full structure rebuilds, which must see the
// ingested rows, not the base dataset.
func (ing *Ingestor) SnapshotDB() (db *dataset.Database, watermark uint64, appliedAt int64) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.db.Clone(), ing.lastSeq, ing.applied
}

// Adopt re-anchors the ingestor on a freshly learned model (a structure
// rebuild): the statistics are rebuilt by one scan of the current staging
// database. Rows ingested since the rebuild's snapshot stay pending and
// publish at the next refit.
func (ing *Ingestor) Adopt(m *core.PRM) error {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	stats, err := m.BuildStats(ing.db)
	if err != nil {
		return fmt.Errorf("ingest: adopt: %w", err)
	}
	ing.model = m
	ing.stats = stats
	return nil
}

// MarkPublished records that a snapshot at the given watermark (from
// SnapshotDB) was durably published — the rebuild path's counterpart of
// Refit's own bookkeeping.
func (ing *Ingestor) MarkPublished(watermark uint64, appliedAt int64) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if watermark > ing.published {
		ing.published = watermark
		ing.pubRows = appliedAt
	}
}

// Pending reports the write-path position: rows applied but not yet in a
// published snapshot, the last acknowledged WAL sequence, and the
// published watermark.
func (ing *Ingestor) Pending() (rows int64, lastSeq, published uint64) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.applied - ing.pubRows, ing.lastSeq, ing.published
}

// Close stops the refit loop. The WAL is left to its owner to close.
func (ing *Ingestor) Close() {
	ing.mu.Lock()
	if ing.closed {
		ing.mu.Unlock()
		return
	}
	ing.closed = true
	ing.mu.Unlock()
	close(ing.stopc)
	ing.wg.Wait()
}

// Replay applies every WAL record with sequence number greater than
// `after` to db, validating each batch against the schema — the
// cold-start recovery path that makes an acknowledged row survive a
// crash. It returns the number of rows applied and the last sequence
// observed. Statistics are not touched: the caller builds them (via New)
// after the database is complete.
func Replay(db *dataset.Database, w *store.WAL, after uint64) (rows int, last uint64, err error) {
	err = w.Replay(after, func(seq uint64, payload []byte) error {
		batch, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("ingest: replay seq %d: %w", seq, err)
		}
		if err := validateRows(db, batch); err != nil {
			return fmt.Errorf("ingest: replay seq %d: %w", seq, err)
		}
		for _, r := range batch {
			if err := db.Table(r.Table).AppendRow(r.Attrs, r.FKs); err != nil {
				return fmt.Errorf("ingest: replay seq %d: %w", seq, err)
			}
		}
		rows += len(batch)
		last = seq
		return nil
	})
	return rows, last, err
}
