// Package ingest is the estimator's write path: validated row batches are
// appended to a crash-safe WAL, folded into the model's incremental
// sufficient statistics, and periodically turned into a refit + published
// snapshot generation — closing the adaptive loop the paper's maintenance
// section (§6) sketches: detect drift, delta-refit, persist.
package ingest

import (
	"encoding/binary"
	"fmt"
)

// Row is one ingested tuple in schema-positional form: attribute value
// codes aligned with the table's attribute list, foreign-key row indexes
// aligned with its foreign-key list. This is the WAL record unit — small,
// schema-stable, and validated on both the ingest and replay paths.
type Row struct {
	Table string
	Attrs []int32
	FKs   []int32
}

// Wire framing of one WAL record: a batch of rows.
//
//	u32  row count
//	per row:
//	  u8   table-name length, then the name bytes
//	  u16  attribute count, u16 foreign-key count
//	  i32  attribute codes, then foreign-key row indexes (little-endian)
//
// Decoding is strict and bounded: counts are capped, every length is
// checked before reading, and trailing bytes are an error — the fuzz
// target FuzzIngestRecord drives arbitrary bytes through it.
const (
	// MaxBatchRows bounds one record's row count.
	MaxBatchRows = 4096
	// maxRowCols bounds per-row column counts against corrupt frames.
	maxRowCols = 4096
)

// EncodeBatch serializes a row batch into one WAL record payload.
func EncodeBatch(rows []Row) ([]byte, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("ingest: empty batch")
	}
	if len(rows) > MaxBatchRows {
		return nil, fmt.Errorf("ingest: batch of %d rows exceeds the %d-row bound", len(rows), MaxBatchRows)
	}
	size := 4
	for _, r := range rows {
		if len(r.Table) == 0 || len(r.Table) > 255 {
			return nil, fmt.Errorf("ingest: table name %q has invalid length", r.Table)
		}
		if len(r.Attrs) > maxRowCols || len(r.FKs) > maxRowCols {
			return nil, fmt.Errorf("ingest: row of table %s has too many columns", r.Table)
		}
		size += 1 + len(r.Table) + 2 + 2 + 4*(len(r.Attrs)+len(r.FKs))
	}
	out := make([]byte, 0, size)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(rows)))
	out = append(out, u32[:]...)
	var u16 [2]byte
	for _, r := range rows {
		out = append(out, byte(len(r.Table)))
		out = append(out, r.Table...)
		binary.LittleEndian.PutUint16(u16[:], uint16(len(r.Attrs)))
		out = append(out, u16[:]...)
		binary.LittleEndian.PutUint16(u16[:], uint16(len(r.FKs)))
		out = append(out, u16[:]...)
		for _, v := range r.Attrs {
			binary.LittleEndian.PutUint32(u32[:], uint32(v))
			out = append(out, u32[:]...)
		}
		for _, v := range r.FKs {
			binary.LittleEndian.PutUint32(u32[:], uint32(v))
			out = append(out, u32[:]...)
		}
	}
	return out, nil
}

// DecodeBatch parses one WAL record payload. Arbitrary bytes produce an
// error, never a panic or an unbounded allocation.
func DecodeBatch(b []byte) ([]Row, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("ingest: record too short: %d bytes", len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	if count == 0 || count > MaxBatchRows {
		return nil, fmt.Errorf("ingest: record row count %d out of range [1,%d]", count, MaxBatchRows)
	}
	b = b[4:]
	rows := make([]Row, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("ingest: row %d: truncated table name length", i)
		}
		nameLen := int(b[0])
		b = b[1:]
		if nameLen == 0 || len(b) < nameLen {
			return nil, fmt.Errorf("ingest: row %d: truncated table name", i)
		}
		name := string(b[:nameLen])
		b = b[nameLen:]
		if len(b) < 4 {
			return nil, fmt.Errorf("ingest: row %d: truncated column counts", i)
		}
		nAttrs := int(binary.LittleEndian.Uint16(b))
		nFKs := int(binary.LittleEndian.Uint16(b[2:]))
		b = b[4:]
		if nAttrs > maxRowCols || nFKs > maxRowCols {
			return nil, fmt.Errorf("ingest: row %d: column counts %d/%d out of range", i, nAttrs, nFKs)
		}
		need := 4 * (nAttrs + nFKs)
		if len(b) < need {
			return nil, fmt.Errorf("ingest: row %d: truncated column data", i)
		}
		r := Row{Table: name}
		if nAttrs > 0 {
			r.Attrs = make([]int32, nAttrs)
			for j := 0; j < nAttrs; j++ {
				r.Attrs[j] = int32(binary.LittleEndian.Uint32(b[4*j:]))
			}
		}
		b = b[4*nAttrs:]
		if nFKs > 0 {
			r.FKs = make([]int32, nFKs)
			for j := 0; j < nFKs; j++ {
				r.FKs[j] = int32(binary.LittleEndian.Uint32(b[4*j:]))
			}
		}
		b = b[4*nFKs:]
		rows = append(rows, r)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("ingest: %d trailing bytes after last row", len(b))
	}
	return rows, nil
}
