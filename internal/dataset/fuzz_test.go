package dataset

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadDatabaseCSV checks the CSV loader never panics and, when it
// accepts input, produces a database that validates and round-trips.
func FuzzReadDatabaseCSV(f *testing.F) {
	f.Add("_pk,A\n1,x\n2,y\n")
	f.Add("_pk,A,fk_F@U\n1,x,9\n")
	f.Add("_pk\n")
	f.Add("")
	f.Add("_pk,fk_broken\n1,2\n")
	f.Add("_pk,A\n\"unterminated")
	f.Add("_pk,A\n1,x\n1,y\n")
	f.Add("_pk,A,A\n1,x,y\n")
	f.Fuzz(func(t *testing.T, content string) {
		db, err := ReadDatabaseCSV(map[string]io.Reader{"T": bytes.NewReader([]byte(content))})
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("accepted database fails validation: %v", err)
		}
		// Round-trip the accepted table.
		var buf bytes.Buffer
		if err := WriteCSV(&buf, db.Table("T")); err != nil {
			t.Fatalf("accepted database fails to serialize: %v", err)
		}
		back, err := ReadDatabaseCSV(map[string]io.Reader{"T": &buf})
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Table("T").Len() != db.Table("T").Len() {
			t.Fatalf("round trip changed row count: %d -> %d", db.Table("T").Len(), back.Table("T").Len())
		}
	})
}
