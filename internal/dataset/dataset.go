// Package dataset is the in-memory relational substrate the estimators are
// built on: categorical attributes, columnar tables, primary/foreign keys
// with referential integrity, exact query execution for ground truth, and
// the count/group-by machinery that produces sufficient statistics for
// model construction.
//
// Primary keys are implicit: the primary key of a row is its index in the
// table. A foreign-key column stores the row index of the referenced tuple,
// which makes referential integrity a simple bounds check and foreign-key
// joins a single array lookup. The CSV loader maps arbitrary external key
// strings onto row indexes, so externally-keyed data round-trips losslessly.
package dataset

import (
	"fmt"
	"sort"
)

// Attribute is a categorical (or discretized) value attribute. Codes are
// indexes into Values; every stored cell is a code in [0, len(Values)).
type Attribute struct {
	Name   string
	Values []string
}

// Card returns the attribute's domain size.
func (a Attribute) Card() int { return len(a.Values) }

// ForeignKey declares that a table holds references into table To.
type ForeignKey struct {
	Name string // column name of the key, e.g. "Patient"
	To   string // referenced table name
}

// Schema describes one table: its value (non-key) attributes and its
// foreign keys. The primary key is implicit (row index).
type Schema struct {
	Name        string
	Attributes  []Attribute
	ForeignKeys []ForeignKey
}

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attributes {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// FKIndex returns the position of the named foreign key, or -1.
func (s *Schema) FKIndex(name string) int {
	for i, fk := range s.ForeignKeys {
		if fk.Name == name {
			return i
		}
	}
	return -1
}

// Table is a columnar table: one []int32 column per value attribute holding
// value codes, and one []int32 column per foreign key holding row indexes
// into the referenced table.
type Table struct {
	Schema
	cols [][]int32 // len(Attributes) columns
	fks  [][]int32 // len(ForeignKeys) columns
	n    int
	// labelCodes lazily maps value labels to codes, per attribute.
	labelCodes []map[string]int32
}

// NewTable returns an empty table with the given schema.
func NewTable(s Schema) *Table {
	t := &Table{Schema: s}
	t.cols = make([][]int32, len(s.Attributes))
	t.fks = make([][]int32, len(s.ForeignKeys))
	return t
}

// Len returns the number of rows.
func (t *Table) Len() int { return t.n }

// AppendRow appends one row. attrs must align with Schema.Attributes and
// fkRefs with Schema.ForeignKeys; fkRefs holds row indexes of the referenced
// tables. Codes are validated against the attribute domains.
func (t *Table) AppendRow(attrs []int32, fkRefs []int32) error {
	if len(attrs) != len(t.Attributes) {
		return fmt.Errorf("dataset: table %s: AppendRow got %d attrs, want %d", t.Name, len(attrs), len(t.Attributes))
	}
	if len(fkRefs) != len(t.ForeignKeys) {
		return fmt.Errorf("dataset: table %s: AppendRow got %d fk refs, want %d", t.Name, len(fkRefs), len(t.ForeignKeys))
	}
	for i, v := range attrs {
		if v < 0 || int(v) >= t.Attributes[i].Card() {
			return fmt.Errorf("dataset: table %s: attribute %s code %d out of domain [0,%d)",
				t.Name, t.Attributes[i].Name, v, t.Attributes[i].Card())
		}
	}
	for i, v := range attrs {
		t.cols[i] = append(t.cols[i], v)
	}
	for i, r := range fkRefs {
		t.fks[i] = append(t.fks[i], r)
	}
	t.n++
	return nil
}

// MustAppendRow is AppendRow that panics on error; intended for generators
// whose inputs are constructed in-process.
func (t *Table) MustAppendRow(attrs []int32, fkRefs []int32) {
	if err := t.AppendRow(attrs, fkRefs); err != nil {
		panic(err)
	}
}

// AppendRowLabels appends one row given attribute value labels instead of
// codes — the convenient form for hand-built databases. Label lookup maps
// are built lazily on first use.
func (t *Table) AppendRowLabels(labels []string, fkRefs []int32) error {
	if len(labels) != len(t.Attributes) {
		return fmt.Errorf("dataset: table %s: AppendRowLabels got %d labels, want %d", t.Name, len(labels), len(t.Attributes))
	}
	if t.labelCodes == nil {
		t.labelCodes = make([]map[string]int32, len(t.Attributes))
		for i, a := range t.Attributes {
			m := make(map[string]int32, a.Card())
			for c, v := range a.Values {
				m[v] = int32(c)
			}
			t.labelCodes[i] = m
		}
	}
	attrs := make([]int32, len(labels))
	for i, l := range labels {
		code, ok := t.labelCodes[i][l]
		if !ok {
			return fmt.Errorf("dataset: table %s: attribute %s has no value %q", t.Name, t.Attributes[i].Name, l)
		}
		attrs[i] = code
	}
	return t.AppendRow(attrs, fkRefs)
}

// Code returns the value code of the given label for attribute attr, or an
// error when either is unknown.
func (t *Table) Code(attr, label string) (int32, error) {
	ai := t.AttrIndex(attr)
	if ai < 0 {
		return 0, fmt.Errorf("dataset: table %s has no attribute %q", t.Name, attr)
	}
	for c, v := range t.Attributes[ai].Values {
		if v == label {
			return int32(c), nil
		}
	}
	return 0, fmt.Errorf("dataset: attribute %s.%s has no value %q", t.Name, attr, label)
}

// Col returns the column of value codes for attribute index i.
func (t *Table) Col(i int) []int32 { return t.cols[i] }

// ColByName returns the column for the named attribute.
func (t *Table) ColByName(name string) ([]int32, error) {
	i := t.AttrIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("dataset: table %s has no attribute %q", t.Name, name)
	}
	return t.cols[i], nil
}

// FKCol returns the referenced-row column for foreign key index i.
func (t *Table) FKCol(i int) []int32 { return t.fks[i] }

// FKColByName returns the referenced-row column for the named foreign key.
func (t *Table) FKColByName(name string) ([]int32, error) {
	i := t.FKIndex(name)
	if i < 0 {
		return nil, fmt.Errorf("dataset: table %s has no foreign key %q", t.Name, name)
	}
	return t.fks[i], nil
}

// Value returns the code of attribute ai in row r.
func (t *Table) Value(r, ai int) int32 { return t.cols[ai][r] }

// Database is a set of tables closed under foreign-key references.
type Database struct {
	tables map[string]*Table
	order  []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// AddTable registers t. Table names must be unique.
func (db *Database) AddTable(t *Table) error {
	if _, dup := db.tables[t.Name]; dup {
		return fmt.Errorf("dataset: duplicate table %q", t.Name)
	}
	db.tables[t.Name] = t
	db.order = append(db.order, t.Name)
	return nil
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// TableNames returns table names in registration order.
func (db *Database) TableNames() []string { return append([]string(nil), db.order...) }

// Rows returns the total number of rows across all tables.
func (db *Database) Rows() int {
	n := 0
	for _, name := range db.order {
		n += db.tables[name].Len()
	}
	return n
}

// Validate checks that every foreign key references an existing table and
// that every reference is in range — the referential-integrity assumption
// the PRM construction relies on.
func (db *Database) Validate() error {
	for _, name := range db.order {
		t := db.tables[name]
		for fi, fk := range t.ForeignKeys {
			target, ok := db.tables[fk.To]
			if !ok {
				return fmt.Errorf("dataset: table %s foreign key %s references unknown table %q", t.Name, fk.Name, fk.To)
			}
			for r, ref := range t.fks[fi] {
				if ref < 0 || int(ref) >= target.Len() {
					return fmt.Errorf("dataset: table %s row %d: foreign key %s reference %d out of range [0,%d)",
						t.Name, r, fk.Name, ref, target.Len())
				}
			}
		}
	}
	return nil
}

// Stratification returns a topological order of the tables under the
// "references" relation (a table comes after every table it references), or
// an error if foreign keys form a cycle. PRM structure search requires a
// stratified schema.
func (db *Database) Stratification() ([]string, error) {
	// Kahn's algorithm over the edge t -> fk.To meaning "t depends on fk.To".
	indeg := make(map[string]int, len(db.order))
	dependents := make(map[string][]string, len(db.order))
	for _, name := range db.order {
		indeg[name] += 0
		for _, fk := range db.tables[name].ForeignKeys {
			if fk.To == name {
				return nil, fmt.Errorf("dataset: table %s has a self-referencing foreign key %s", name, fk.Name)
			}
			indeg[name]++
			dependents[fk.To] = append(dependents[fk.To], name)
		}
	}
	var queue []string
	for _, name := range db.order {
		if indeg[name] == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue)
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		next := append([]string(nil), dependents[n]...)
		sort.Strings(next)
		for _, d := range next {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if len(out) != len(db.order) {
		return nil, fmt.Errorf("dataset: foreign keys form a cycle; schema is not stratified")
	}
	return out, nil
}
