package dataset

import (
	"fmt"

	"prmsel/internal/query"
)

// Contingency is a sparse joint count table over a list of targets: for each
// combination of value codes it records how many satisfying assignments of
// the skeleton query carry that combination. It backs both ground-truth
// evaluation of whole query suites and the sufficient statistics used by
// model construction.
type Contingency struct {
	Targets []query.Target
	Cards   []int
	strides []uint64
	counts  map[uint64]int64
	total   int64
}

// key packs vals into the mixed-radix key. vals align with Targets.
func (c *Contingency) key(vals []int32) uint64 {
	var k uint64
	for i, v := range vals {
		k += uint64(v) * c.strides[i]
	}
	return k
}

// Count returns the number of assignments whose targets equal vals.
func (c *Contingency) Count(vals []int32) int64 { return c.counts[c.key(vals)] }

// Total returns the number of satisfying assignments of the skeleton (the
// join size before any selection).
func (c *Contingency) Total() int64 { return c.total }

// Cells returns the number of non-zero cells.
func (c *Contingency) Cells() int { return len(c.counts) }

// ForEach visits every non-zero cell. The vals slice is reused across calls.
func (c *Contingency) ForEach(fn func(vals []int32, n int64)) {
	vals := make([]int32, len(c.Targets))
	for k, n := range c.counts {
		for i := range vals {
			vals[i] = int32(k / c.strides[i] % uint64(c.Cards[i]))
		}
		fn(vals, n)
	}
}

// CountIn returns the number of assignments whose target values fall in the
// given accept sets (nil set = unconstrained). Used for range/IN queries.
func (c *Contingency) CountIn(accept []map[int32]bool) int64 {
	var total int64
	vals := make([]int32, len(c.Targets))
	for k, n := range c.counts {
		ok := true
		for i := range vals {
			vals[i] = int32(k / c.strides[i] % uint64(c.Cards[i]))
			if accept[i] != nil && !accept[i][vals[i]] {
				ok = false
				break
			}
		}
		if ok {
			total += n
		}
	}
	return total
}

// JointCounts enumerates the satisfying assignments of skeleton (a query
// with joins but typically no predicates) and returns the joint counts over
// the target attributes. Skeletons whose tuple variables form more than one
// join-connected component are rejected: their assignment set is a cross
// product and should be composed from per-component contingencies instead.
func (db *Database) JointCounts(skeleton *query.Query, targets []query.Target) (*Contingency, error) {
	if err := checkConnected(skeleton); err != nil {
		return nil, err
	}
	ex, err := db.newExec(skeleton)
	if err != nil {
		return nil, err
	}
	c := &Contingency{
		Targets: append([]query.Target(nil), targets...),
		Cards:   make([]int, len(targets)),
		strides: make([]uint64, len(targets)),
		counts:  make(map[uint64]int64),
	}
	// Resolve each target to (exec var position, attribute index).
	varPos := make(map[string]int, len(ex.vars))
	for i, b := range ex.vars {
		varPos[b.name] = i
	}
	type loc struct{ pos, ai int }
	locs := make([]loc, len(targets))
	stride := uint64(1)
	for i, t := range targets {
		p, ok := varPos[t.Var]
		if !ok {
			return nil, fmt.Errorf("dataset: target references undeclared variable %q", t.Var)
		}
		ai := ex.vars[p].table.AttrIndex(t.Attr)
		if ai < 0 {
			return nil, fmt.Errorf("dataset: table %s has no attribute %q", ex.vars[p].table.Name, t.Attr)
		}
		locs[i] = loc{pos: p, ai: ai}
		card := ex.vars[p].table.Attributes[ai].Card()
		c.Cards[i] = card
		c.strides[i] = stride
		if stride > (1<<62)/uint64(card) {
			return nil, fmt.Errorf("dataset: joint domain over %d targets overflows the packing key", len(targets))
		}
		stride *= uint64(card)
	}
	rows := make([]int32, len(ex.vars))
	vals := make([]int32, len(targets))
	ex.enumerate(0, rows, func() {
		for i, l := range locs {
			vals[i] = ex.vars[l.pos].table.cols[l.ai][rows[l.pos]]
		}
		c.counts[c.key(vals)]++
		c.total++
	})
	return c, nil
}

// checkConnected rejects skeletons whose variables are not join-connected
// (unless there is a single variable).
func checkConnected(q *query.Query) error {
	if len(q.Vars) <= 1 {
		return nil
	}
	adj := make(map[string][]string)
	for _, j := range q.Joins {
		adj[j.FromVar] = append(adj[j.FromVar], j.ToVar)
		adj[j.ToVar] = append(adj[j.ToVar], j.FromVar)
	}
	for _, j := range q.NonKeyJoins {
		adj[j.LeftVar] = append(adj[j.LeftVar], j.RightVar)
		adj[j.RightVar] = append(adj[j.RightVar], j.LeftVar)
	}
	names := q.VarNames()
	seen := map[string]bool{names[0]: true}
	stack := []string{names[0]}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	if len(seen) != len(names) {
		return fmt.Errorf("dataset: skeleton variables form %d+ join components; enumerate per component", 2)
	}
	return nil
}

// AttrCounts returns the marginal value counts of one attribute of one
// table — the 1-D histogram used by the AVI baseline and by parameter
// estimation for parentless nodes.
func (t *Table) AttrCounts(ai int) []int64 {
	counts := make([]int64, t.Attributes[ai].Card())
	for _, v := range t.cols[ai] {
		counts[v]++
	}
	return counts
}

// JoinPairCounts computes the sufficient statistics of a join indicator
// variable for the foreign key fk of table from: for every combination of
// the given fromAttrs (attribute indexes in from) and toAttrs (attribute
// indexes in the referenced table), the number of (t, s) pairs that actually
// join. The total pair count per combination is the product of the two
// marginal counts and is computed by the caller from AttrCounts/JointCounts;
// under referential integrity the joined count per from-row is exactly one.
func (db *Database) JoinPairCounts(from *Table, fkIdx int, fromAttrs, toAttrs []int) (map[uint64]int64, []int, error) {
	fk := from.ForeignKeys[fkIdx]
	to := db.Table(fk.To)
	if to == nil {
		return nil, nil, fmt.Errorf("dataset: foreign key %s.%s references unknown table %q", from.Name, fk.Name, fk.To)
	}
	cards := make([]int, 0, len(fromAttrs)+len(toAttrs))
	for _, ai := range fromAttrs {
		cards = append(cards, from.Attributes[ai].Card())
	}
	for _, ai := range toAttrs {
		cards = append(cards, to.Attributes[ai].Card())
	}
	strides := make([]uint64, len(cards))
	stride := uint64(1)
	for i, card := range cards {
		strides[i] = stride
		stride *= uint64(card)
	}
	counts := make(map[uint64]int64)
	refs := from.fks[fkIdx]
	for r := 0; r < from.Len(); r++ {
		var k uint64
		for i, ai := range fromAttrs {
			k += uint64(from.cols[ai][r]) * strides[i]
		}
		s := refs[r]
		for i, ai := range toAttrs {
			k += uint64(to.cols[ai][s]) * strides[len(fromAttrs)+i]
		}
		counts[k]++
	}
	return counts, cards, nil
}
