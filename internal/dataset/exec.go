package dataset

import (
	"fmt"
	"sort"

	"prmsel/internal/query"
)

// Count executes q exactly and returns the true result size. It is the
// ground truth the estimators are evaluated against. Tuple variables not
// linked by join clauses contribute multiplicatively (cross product), as in
// the paper's sampling semantics.
func (db *Database) Count(q *query.Query) (int64, error) {
	ex, err := db.newExec(q)
	if err != nil {
		return 0, err
	}
	return ex.count(), nil
}

// binding resolves one tuple variable of a query against its table.
type binding struct {
	name  string
	table *Table
	// preds: attribute index -> accepted-code set (nil entry = unconstrained).
	accept []map[int32]bool
	// determinedBy: edges earlier->this: (earlier var position, fk col of earlier table).
	determinedBy []fkEdge
	// iterates: edges this->earlier: (earlier var position, reverse index buckets).
	iterates []revEdge
	// nkChecks: non-key equality constraints against earlier variables.
	nkChecks []nkCheck
}

type fkEdge struct {
	fromPos int     // position of the earlier variable in exec order
	col     []int32 // FK column on the earlier variable's table
}

type revEdge struct {
	toPos   int       // position of the earlier (referenced) variable
	buckets [][]int32 // referenced row -> referencing rows
}

// nkCheck is a non-key equality constraint against an earlier variable.
type nkCheck struct {
	ownAI      int // attribute index on this binding's table
	earlierPos int // position of the other variable
	earlierAI  int // attribute index on the other variable's table
}

type exec struct {
	db   *Database
	vars []*binding
}

func (db *Database) newExec(q *query.Query) (*exec, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	names := q.VarNames()
	pos := make(map[string]int, len(names))

	// Order variables so every variable after the first in its connected
	// component touches an earlier one via some join clause: repeatedly pick
	// the lexicographically-first unplaced variable that joins an already
	// placed one, else the first unplaced variable (new component).
	adj := make(map[string][]string)
	for _, j := range q.Joins {
		adj[j.FromVar] = append(adj[j.FromVar], j.ToVar)
		adj[j.ToVar] = append(adj[j.ToVar], j.FromVar)
	}
	for _, j := range q.NonKeyJoins {
		adj[j.LeftVar] = append(adj[j.LeftVar], j.RightVar)
		adj[j.RightVar] = append(adj[j.RightVar], j.LeftVar)
	}
	placed := make(map[string]bool, len(names))
	var order []string
	for len(order) < len(names) {
		pick := ""
		for _, n := range names {
			if placed[n] {
				continue
			}
			for _, m := range adj[n] {
				if placed[m] {
					pick = n
					break
				}
			}
			if pick != "" {
				break
			}
		}
		if pick == "" {
			for _, n := range names {
				if !placed[n] {
					pick = n
					break
				}
			}
		}
		placed[pick] = true
		pos[pick] = len(order)
		order = append(order, pick)
	}

	ex := &exec{db: db, vars: make([]*binding, len(order))}
	for i, name := range order {
		tbl := db.Table(q.Vars[name])
		if tbl == nil {
			return nil, fmt.Errorf("dataset: query variable %s ranges over unknown table %q", name, q.Vars[name])
		}
		ex.vars[i] = &binding{name: name, table: tbl, accept: make([]map[int32]bool, len(tbl.Attributes))}
	}
	for _, p := range q.Preds {
		b := ex.vars[pos[p.Var]]
		ai := b.table.AttrIndex(p.Attr)
		if ai < 0 {
			return nil, fmt.Errorf("dataset: table %s has no attribute %q", b.table.Name, p.Attr)
		}
		set, err := p.Accept(b.table.Attributes[ai].Card())
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		if b.accept[ai] != nil {
			// Conjunction of predicates on the same attribute: intersect.
			for v := range b.accept[ai] {
				if !set[v] {
					delete(b.accept[ai], v)
				}
			}
		} else {
			b.accept[ai] = set
		}
	}
	for _, j := range q.Joins {
		from, to := ex.vars[pos[j.FromVar]], ex.vars[pos[j.ToVar]]
		fi := from.table.FKIndex(j.FK)
		if fi < 0 {
			return nil, fmt.Errorf("dataset: table %s has no foreign key %q", from.table.Name, j.FK)
		}
		if from.table.ForeignKeys[fi].To != to.table.Name {
			return nil, fmt.Errorf("dataset: foreign key %s.%s references %s, not %s",
				from.table.Name, j.FK, from.table.ForeignKeys[fi].To, to.table.Name)
		}
		col := from.table.FKCol(fi)
		switch {
		case pos[j.FromVar] < pos[j.ToVar]:
			// Earlier row determines the later (referenced) row.
			to.determinedBy = append(to.determinedBy, fkEdge{fromPos: pos[j.FromVar], col: col})
		default:
			// Later variable references an earlier one: iterate its bucket.
			from.iterates = append(from.iterates, revEdge{
				toPos:   pos[j.ToVar],
				buckets: reverseIndex(col, to.table.Len()),
			})
		}
	}
	for _, j := range q.NonKeyJoins {
		lb, rb := ex.vars[pos[j.LeftVar]], ex.vars[pos[j.RightVar]]
		lai := lb.table.AttrIndex(j.LeftAttr)
		if lai < 0 {
			return nil, fmt.Errorf("dataset: table %s has no attribute %q", lb.table.Name, j.LeftAttr)
		}
		rai := rb.table.AttrIndex(j.RightAttr)
		if rai < 0 {
			return nil, fmt.Errorf("dataset: table %s has no attribute %q", rb.table.Name, j.RightAttr)
		}
		// Attach the constraint to whichever variable comes later.
		if pos[j.LeftVar] > pos[j.RightVar] {
			lb.nkChecks = append(lb.nkChecks, nkCheck{ownAI: lai, earlierPos: pos[j.RightVar], earlierAI: rai})
		} else {
			rb.nkChecks = append(rb.nkChecks, nkCheck{ownAI: rai, earlierPos: pos[j.LeftVar], earlierAI: lai})
		}
	}
	return ex, nil
}

func reverseIndex(col []int32, targetLen int) [][]int32 {
	buckets := make([][]int32, targetLen)
	for r, ref := range col {
		buckets[ref] = append(buckets[ref], int32(r))
	}
	return buckets
}

// rowOK reports whether row r of binding b passes b's predicates.
func (b *binding) rowOK(r int32) bool {
	for ai, set := range b.accept {
		if set != nil && !set[b.table.cols[ai][r]] {
			return false
		}
	}
	return true
}

// count runs the backtracking join and returns the number of satisfying
// variable assignments.
func (ex *exec) count() int64 {
	rows := make([]int32, len(ex.vars))
	var total int64
	ex.enumerate(0, rows, func() { total++ })
	return total
}

// enumerate visits every satisfying assignment, invoking fn with ex.vars[i]
// bound to rows[i].
func (ex *exec) enumerate(i int, rows []int32, fn func()) {
	if i == len(ex.vars) {
		fn()
		return
	}
	b := ex.vars[i]
	switch {
	case len(b.determinedBy) > 0:
		r := b.determinedBy[0].col[rows[b.determinedBy[0].fromPos]]
		if b.consistentAll(ex, r, rows) {
			rows[i] = r
			ex.enumerate(i+1, rows, fn)
		}
	case len(b.iterates) > 0:
		e := b.iterates[0]
		for _, r := range e.buckets[rows[e.toPos]] {
			if b.consistentAll(ex, r, rows) {
				rows[i] = r
				ex.enumerate(i+1, rows, fn)
			}
		}
	default:
		for r := int32(0); int(r) < b.table.Len(); r++ {
			if b.consistentAll(ex, r, rows) {
				rows[i] = r
				ex.enumerate(i+1, rows, fn)
			}
		}
	}
}

// consistentAll checks row r of b against predicates and every join edge to
// earlier variables.
func (b *binding) consistentAll(ex *exec, r int32, rows []int32) bool {
	if !b.rowOK(r) {
		return false
	}
	for _, e := range b.determinedBy {
		if e.col[rows[e.fromPos]] != r {
			return false
		}
	}
	for _, e := range b.iterates {
		if !containsRow(e.buckets[rows[e.toPos]], r) {
			return false
		}
	}
	for _, c := range b.nkChecks {
		other := ex.vars[c.earlierPos]
		if b.table.cols[c.ownAI][r] != other.table.cols[c.earlierAI][rows[c.earlierPos]] {
			return false
		}
	}
	return true
}

// containsRow reports whether r is in bucket. Buckets are built in
// increasing row order, so a binary search keeps the cross-check cheap even
// for skewed fan-outs.
func containsRow(bucket []int32, r int32) bool {
	i := sort.Search(len(bucket), func(i int) bool { return bucket[i] >= r })
	return i < len(bucket) && bucket[i] == r
}
