package dataset

import (
	"testing"

	"prmsel/internal/query"
)

// tinyDB builds a two-table database: Owner (2 rows) and Pet (4 rows with a
// FK to Owner), small enough to verify counts by hand.
func tinyDB(t *testing.T) *Database {
	t.Helper()
	owner := NewTable(Schema{
		Name: "Owner",
		Attributes: []Attribute{
			{Name: "City", Values: []string{"sf", "la"}},
			{Name: "Income", Values: []string{"low", "high"}},
		},
	})
	owner.MustAppendRow([]int32{0, 1}, nil) // row 0: sf, high
	owner.MustAppendRow([]int32{1, 0}, nil) // row 1: la, low

	pet := NewTable(Schema{
		Name: "Pet",
		Attributes: []Attribute{
			{Name: "Species", Values: []string{"cat", "dog"}},
		},
		ForeignKeys: []ForeignKey{{Name: "Owner", To: "Owner"}},
	})
	pet.MustAppendRow([]int32{0}, []int32{0}) // cat, owner 0
	pet.MustAppendRow([]int32{1}, []int32{0}) // dog, owner 0
	pet.MustAppendRow([]int32{1}, []int32{0}) // dog, owner 0
	pet.MustAppendRow([]int32{0}, []int32{1}) // cat, owner 1

	db := NewDatabase()
	for _, tbl := range []*Table{owner, pet} {
		if err := db.AddTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAppendRowValidation(t *testing.T) {
	tbl := NewTable(Schema{Name: "T", Attributes: []Attribute{{Name: "A", Values: []string{"x", "y"}}}})
	if err := tbl.AppendRow([]int32{2}, nil); err == nil {
		t.Error("out-of-domain code accepted")
	}
	if err := tbl.AppendRow([]int32{0, 1}, nil); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.AppendRow([]int32{1}, []int32{0}); err == nil {
		t.Error("unexpected fk ref accepted")
	}
	if err := tbl.AppendRow([]int32{1}, nil); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

func TestValidateCatchesBrokenReference(t *testing.T) {
	db := tinyDB(t)
	pet := db.Table("Pet")
	pet.fks[0][0] = 99
	if err := db.Validate(); err == nil {
		t.Error("dangling foreign key not caught")
	}
}

func TestValidateCatchesUnknownTable(t *testing.T) {
	db := NewDatabase()
	tbl := NewTable(Schema{
		Name:        "T",
		Attributes:  []Attribute{{Name: "A", Values: []string{"x"}}},
		ForeignKeys: []ForeignKey{{Name: "F", To: "Missing"}},
	})
	tbl.MustAppendRow([]int32{0}, []int32{0})
	if err := db.AddTable(tbl); err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err == nil {
		t.Error("reference to missing table not caught")
	}
}

func TestStratification(t *testing.T) {
	db := tinyDB(t)
	order, err := db.Stratification()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["Owner"] > pos["Pet"] {
		t.Errorf("Owner must precede Pet in stratification, got %v", order)
	}
}

func TestStratificationDetectsCycle(t *testing.T) {
	db := NewDatabase()
	a := NewTable(Schema{Name: "A", ForeignKeys: []ForeignKey{{Name: "F", To: "B"}}})
	b := NewTable(Schema{Name: "B", ForeignKeys: []ForeignKey{{Name: "G", To: "A"}}})
	if err := db.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(b); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Stratification(); err == nil {
		t.Error("cyclic schema accepted")
	}
}

func TestCountSingleTable(t *testing.T) {
	db := tinyDB(t)
	q := query.New().Over("p", "Pet").WhereEq("p", "Species", 1)
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("dogs = %d, want 2", n)
	}
}

func TestCountRangePredicate(t *testing.T) {
	db := tinyDB(t)
	q := query.New().Over("p", "Pet").Where("p", "Species", 0, 1)
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("all species = %d, want 4", n)
	}
}

func TestCountJoin(t *testing.T) {
	db := tinyDB(t)
	// Dogs of high-income owners: rows 1,2 join owner 0 (high) -> 2.
	q := query.New().
		Over("p", "Pet").Over("o", "Owner").
		KeyJoin("p", "Owner", "o").
		WhereEq("p", "Species", 1).
		WhereEq("o", "Income", 1)
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("dogs of high-income owners = %d, want 2", n)
	}
}

func TestCountJoinNoSelect(t *testing.T) {
	db := tinyDB(t)
	q := query.New().Over("p", "Pet").Over("o", "Owner").KeyJoin("p", "Owner", "o")
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("join size = %d, want 4 (referential integrity)", n)
	}
}

func TestCountCrossProduct(t *testing.T) {
	db := tinyDB(t)
	q := query.New().Over("p", "Pet").Over("o", "Owner")
	n, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("cross product = %d, want 8", n)
	}
}

func TestCountJoinReverseVarOrder(t *testing.T) {
	// Variable names chosen so the referenced variable sorts first,
	// exercising the determinedBy path, and vice versa.
	db := tinyDB(t)
	for _, names := range [][2]string{{"a", "z"}, {"z", "a"}} {
		q := query.New().
			Over(names[0], "Pet").Over(names[1], "Owner").
			KeyJoin(names[0], "Owner", names[1]).
			WhereEq(names[1], "City", 0)
		n, err := db.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Errorf("pets of sf owners (%v) = %d, want 3", names, n)
		}
	}
}

func TestCountErrors(t *testing.T) {
	db := tinyDB(t)
	cases := []*query.Query{
		query.New().Over("p", "Nope"),
		query.New().Over("p", "Pet").WhereEq("p", "Nope", 0),
		query.New().Over("p", "Pet").WhereEq("p", "Species", 9),
		query.New().Over("p", "Pet").Over("o", "Owner").KeyJoin("p", "Nope", "o"),
		query.New().Over("p", "Pet").Over("o", "Pet").KeyJoin("p", "Owner", "o"),
	}
	for i, q := range cases {
		if _, err := db.Count(q); err == nil {
			t.Errorf("case %d: invalid query accepted", i)
		}
	}
}

func TestJointCountsMatchesPerQueryCounts(t *testing.T) {
	db := tinyDB(t)
	skeleton := query.New().Over("p", "Pet").Over("o", "Owner").KeyJoin("p", "Owner", "o")
	targets := []query.Target{{Var: "p", Attr: "Species"}, {Var: "o", Attr: "Income"}}
	cont, err := db.JointCounts(skeleton, targets)
	if err != nil {
		t.Fatal(err)
	}
	if cont.Total() != 4 {
		t.Fatalf("total = %d, want 4", cont.Total())
	}
	for s := int32(0); s < 2; s++ {
		for inc := int32(0); inc < 2; inc++ {
			q := skeleton.Clone().WhereEq("p", "Species", s).WhereEq("o", "Income", inc)
			want, err := db.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			if got := cont.Count([]int32{s, inc}); got != want {
				t.Errorf("cell (%d,%d) = %d, want %d", s, inc, got, want)
			}
		}
	}
}

func TestJointCountsRejectsDisconnected(t *testing.T) {
	db := tinyDB(t)
	skeleton := query.New().Over("p", "Pet").Over("o", "Owner")
	if _, err := db.JointCounts(skeleton, nil); err == nil {
		t.Error("disconnected skeleton accepted")
	}
}

func TestContingencyCountIn(t *testing.T) {
	db := tinyDB(t)
	skeleton := query.New().Over("p", "Pet")
	cont, err := db.JointCounts(skeleton, []query.Target{{Var: "p", Attr: "Species"}})
	if err != nil {
		t.Fatal(err)
	}
	got := cont.CountIn([]map[int32]bool{{0: true, 1: true}})
	if got != 4 {
		t.Errorf("CountIn(all) = %d, want 4", got)
	}
	got = cont.CountIn([]map[int32]bool{{1: true}})
	if got != 2 {
		t.Errorf("CountIn(dog) = %d, want 2", got)
	}
	got = cont.CountIn([]map[int32]bool{nil})
	if got != 4 {
		t.Errorf("CountIn(nil) = %d, want 4", got)
	}
}

func TestAttrCounts(t *testing.T) {
	db := tinyDB(t)
	counts := db.Table("Pet").AttrCounts(0)
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("AttrCounts = %v, want [2 2]", counts)
	}
}

func TestJoinPairCounts(t *testing.T) {
	db := tinyDB(t)
	pet := db.Table("Pet")
	counts, cards, err := db.JoinPairCounts(pet, 0, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cards) != 2 || cards[0] != 2 || cards[1] != 2 {
		t.Fatalf("cards = %v", cards)
	}
	// Joined pairs grouped by (Species, Owner.Income):
	// cat->owner0(high): 1, dog->owner0(high): 2, cat->owner1(low): 1.
	get := func(species, income int32) int64 {
		return counts[uint64(species)+2*uint64(income)]
	}
	if get(0, 1) != 1 || get(1, 1) != 2 || get(0, 0) != 1 || get(1, 0) != 0 {
		t.Errorf("pair counts wrong: %v", counts)
	}
}

func TestCountNonKeyJoin(t *testing.T) {
	db := tinyDB(t)
	// Pet.Species = Owner.City (codes compared): pairs where species code
	// equals city code. Owners: city codes {0,1}; pets: species {0,1,1,0}.
	q := query.New().
		Over("p", "Pet").Over("o", "Owner").
		NonKeyJoinOn("p", "Species", "o", "City")
	got, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	pet, owner := db.Table("Pet"), db.Table("Owner")
	var want int64
	for r := 0; r < pet.Len(); r++ {
		for s := 0; s < owner.Len(); s++ {
			if pet.Value(r, 0) == owner.Value(s, 0) {
				want++
			}
		}
	}
	if got != want {
		t.Errorf("non-key join count = %d, want %d", got, want)
	}
}

func TestCountNonKeyJoinWithKeyJoin(t *testing.T) {
	db := tinyDB(t)
	// Pets joined to their owner where species code equals city code.
	q := query.New().
		Over("p", "Pet").Over("o", "Owner").
		KeyJoin("p", "Owner", "o").
		NonKeyJoinOn("p", "Species", "o", "City")
	got, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	pet, owner := db.Table("Pet"), db.Table("Owner")
	var want int64
	for r := 0; r < pet.Len(); r++ {
		o := pet.FKCol(0)[r]
		if pet.Value(r, 0) == owner.Value(int(o), 0) {
			want++
		}
	}
	if got != want {
		t.Errorf("mixed join count = %d, want %d", got, want)
	}
}

func TestCountNonKeyJoinErrors(t *testing.T) {
	db := tinyDB(t)
	q := query.New().
		Over("p", "Pet").Over("o", "Owner").
		NonKeyJoinOn("p", "Nope", "o", "City")
	if _, err := db.Count(q); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestAppendRowLabelsAndCode(t *testing.T) {
	tbl := NewTable(Schema{
		Name:       "T",
		Attributes: []Attribute{{Name: "Color", Values: []string{"red", "blue"}}},
	})
	if err := tbl.AppendRowLabels([]string{"blue"}, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.Value(0, 0) != 1 {
		t.Errorf("label append stored code %d, want 1", tbl.Value(0, 0))
	}
	if err := tbl.AppendRowLabels([]string{"green"}, nil); err == nil {
		t.Error("unknown label accepted")
	}
	if err := tbl.AppendRowLabels([]string{"a", "b"}, nil); err == nil {
		t.Error("wrong arity accepted")
	}
	code, err := tbl.Code("Color", "red")
	if err != nil || code != 0 {
		t.Errorf("Code = %d, %v", code, err)
	}
	if _, err := tbl.Code("Color", "green"); err == nil {
		t.Error("unknown label code accepted")
	}
	if _, err := tbl.Code("Nope", "red"); err == nil {
		t.Error("unknown attribute accepted")
	}
}
