package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Database serialization and deep copy. The ingest subsystem needs both:
// the durable store persists the ingested database beside each model
// generation (so WAL truncation never loses acknowledged rows), and the
// serve layer publishes copy-on-write clones of the mutable staging
// database so estimate readers always see an immutable snapshot.

// tableDTO is the flat gob image of one table. Columns are copied as-is;
// the label-code cache is rebuilt lazily on demand.
type tableDTO struct {
	Schema Schema
	Cols   [][]int32
	FKs    [][]int32
	N      int
}

// dbDTO is the gob image of a database, tables in registration order.
type dbDTO struct {
	Tables []tableDTO
}

// Encode writes the database as a gob stream.
func (db *Database) Encode(w io.Writer) error {
	dto := dbDTO{Tables: make([]tableDTO, 0, len(db.order))}
	for _, name := range db.order {
		t := db.tables[name]
		dto.Tables = append(dto.Tables, tableDTO{Schema: t.Schema, Cols: t.cols, FKs: t.fks, N: t.n})
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// DecodeDatabase reads a database gob stream and validates it: column
// shapes must match the schema, every code must be in its attribute
// domain, and referential integrity must hold. Arbitrary bytes produce an
// error, never a panic or an invalid database.
func DecodeDatabase(r io.Reader) (*Database, error) {
	var dto dbDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	db := NewDatabase()
	for _, td := range dto.Tables {
		if td.N < 0 {
			return nil, fmt.Errorf("dataset: decode: table %s: negative row count %d", td.Schema.Name, td.N)
		}
		if len(td.Cols) != len(td.Schema.Attributes) {
			return nil, fmt.Errorf("dataset: decode: table %s: %d columns for %d attributes", td.Schema.Name, len(td.Cols), len(td.Schema.Attributes))
		}
		if len(td.FKs) != len(td.Schema.ForeignKeys) {
			return nil, fmt.Errorf("dataset: decode: table %s: %d fk columns for %d foreign keys", td.Schema.Name, len(td.FKs), len(td.Schema.ForeignKeys))
		}
		t := NewTable(td.Schema)
		for i, col := range td.Cols {
			if len(col) != td.N {
				return nil, fmt.Errorf("dataset: decode: table %s: column %s has %d rows, want %d", td.Schema.Name, td.Schema.Attributes[i].Name, len(col), td.N)
			}
			card := int32(td.Schema.Attributes[i].Card())
			for _, v := range col {
				if v < 0 || v >= card {
					return nil, fmt.Errorf("dataset: decode: table %s: attribute %s code %d out of domain [0,%d)", td.Schema.Name, td.Schema.Attributes[i].Name, v, card)
				}
			}
			t.cols[i] = col
		}
		for i, col := range td.FKs {
			if len(col) != td.N {
				return nil, fmt.Errorf("dataset: decode: table %s: fk column %s has %d rows, want %d", td.Schema.Name, td.Schema.ForeignKeys[i].Name, len(col), td.N)
			}
			t.fks[i] = col
		}
		t.n = td.N
		if err := db.AddTable(t); err != nil {
			return nil, fmt.Errorf("dataset: decode: %w", err)
		}
	}
	if err := db.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	return db, nil
}

// Clone returns a deep copy of the database: schemas shared (they are
// immutable by convention), column data copied. Appends to the original
// never disturb the clone — the copy-on-write primitive behind published
// ingest snapshots.
func (db *Database) Clone() *Database {
	out := NewDatabase()
	for _, name := range db.order {
		t := db.tables[name]
		ct := NewTable(t.Schema)
		for i, col := range t.cols {
			ct.cols[i] = append(make([]int32, 0, len(col)), col...)
		}
		for i, col := range t.fks {
			ct.fks[i] = append(make([]int32, 0, len(col)), col...)
		}
		ct.n = t.n
		out.tables[name] = ct
		out.order = append(out.order, name)
	}
	return out
}
