package dataset

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"prmsel/internal/query"
)

func TestCSVRoundTrip(t *testing.T) {
	db := tinyDB(t)
	files := make(map[string]io.Reader)
	for _, name := range db.TableNames() {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, db.Table(name)); err != nil {
			t.Fatal(err)
		}
		files[name] = bytes.NewReader(buf.Bytes())
	}
	back, err := ReadDatabaseCSV(files)
	if err != nil {
		t.Fatal(err)
	}
	// Codes may be renumbered (labels are sorted on import), so compare by
	// label-level query counts.
	petBack := back.Table("Pet")
	dogCode := int32(-1)
	for i, v := range petBack.Attributes[petBack.AttrIndex("Species")].Values {
		if v == "dog" {
			dogCode = int32(i)
		}
	}
	if dogCode < 0 {
		t.Fatal("dog label lost in round trip")
	}
	ownerBack := back.Table("Owner")
	highCode := int32(-1)
	for i, v := range ownerBack.Attributes[ownerBack.AttrIndex("Income")].Values {
		if v == "high" {
			highCode = int32(i)
		}
	}
	q := query.New().
		Over("p", "Pet").Over("o", "Owner").
		KeyJoin("p", "Owner", "o").
		WhereEq("p", "Species", dogCode).
		WhereEq("o", "Income", highCode)
	n, err := back.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("round-tripped count = %d, want 2", n)
	}
}

func TestReadDatabaseCSVErrors(t *testing.T) {
	cases := map[string]map[string]string{
		"missing header pk": {"T": "A,B\nx,y\n"},
		"duplicate pk":      {"T": "_pk,A\n1,x\n1,y\n"},
		"bad fk column":     {"T": "_pk,fk_F\n1,2\n"},
		"missing ref table": {"T": "_pk,fk_F@U\n1,2\n"},
		"dangling ref":      {"T": "_pk,fk_F@U\n1,9\n", "U": "_pk,A\n1,x\n"},
		"ragged row":        {"T": "_pk,A\n1\n"},
	}
	for name, files := range cases {
		readers := make(map[string]io.Reader, len(files))
		for tn, content := range files {
			readers[tn] = strings.NewReader(content)
		}
		if _, err := ReadDatabaseCSV(readers); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestCountMatchesBruteForce cross-checks the backtracking join counter
// against a naive nested-loop evaluation on random two-table databases and
// random queries.
func TestCountMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nOwner := 1 + rng.Intn(6)
		nPet := rng.Intn(12)
		owner := NewTable(Schema{
			Name:       "Owner",
			Attributes: []Attribute{{Name: "A", Values: []string{"0", "1", "2"}}},
		})
		for i := 0; i < nOwner; i++ {
			owner.MustAppendRow([]int32{int32(rng.Intn(3))}, nil)
		}
		pet := NewTable(Schema{
			Name:        "Pet",
			Attributes:  []Attribute{{Name: "B", Values: []string{"0", "1"}}},
			ForeignKeys: []ForeignKey{{Name: "Owner", To: "Owner"}},
		})
		for i := 0; i < nPet; i++ {
			pet.MustAppendRow([]int32{int32(rng.Intn(2))}, []int32{int32(rng.Intn(nOwner))})
		}
		db := NewDatabase()
		if err := db.AddTable(owner); err != nil {
			t.Fatal(err)
		}
		if err := db.AddTable(pet); err != nil {
			t.Fatal(err)
		}

		aVal := int32(rng.Intn(3))
		bVal := int32(rng.Intn(2))
		q := query.New().
			Over("p", "Pet").Over("o", "Owner").
			KeyJoin("p", "Owner", "o").
			WhereEq("o", "A", aVal).
			WhereEq("p", "B", bVal)
		got, err := db.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for r := 0; r < pet.Len(); r++ {
			o := pet.FKCol(0)[r]
			if pet.Value(r, 0) == bVal && owner.Value(int(o), 0) == aVal {
				want++
			}
		}
		if got != want {
			t.Errorf("seed %d: Count = %d, brute force = %d", seed, got, want)
		}
	}
}
