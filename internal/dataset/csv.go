package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// CSV layout: the first column is "_pk" holding an arbitrary unique key
// string for the row; value attributes appear as plain named columns holding
// value labels; a foreign key named F referencing table T appears as a
// column "fk_F@T" holding the _pk of the referenced row. This lets
// externally-keyed data round-trip while the in-memory representation keeps
// row-index references.

// WriteCSV writes t in the CSV layout described above. Row indexes are used
// as the _pk strings.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := []string{"_pk"}
	for _, a := range t.Attributes {
		header = append(header, a.Name)
	}
	for _, fk := range t.ForeignKeys {
		header = append(header, "fk_"+fk.Name+"@"+fk.To)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for r := 0; r < t.Len(); r++ {
		rec[0] = strconv.Itoa(r)
		for i, a := range t.Attributes {
			rec[1+i] = a.Values[t.cols[i][r]]
		}
		for i := range t.ForeignKeys {
			rec[1+len(t.Attributes)+i] = strconv.Itoa(int(t.fks[i][r]))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadDatabaseCSV reads a database from per-table CSV readers keyed by table
// name. Attribute domains are inferred as the sorted set of distinct labels.
// Foreign keys may reference rows in any order; resolution is two-pass.
func ReadDatabaseCSV(files map[string]io.Reader) (*Database, error) {
	type rawTable struct {
		name     string
		attrs    []string
		fkNames  []string
		fkTo     []string
		cells    [][]string // per attr column
		fkCells  [][]string // per fk column
		pkToRow  map[string]int32
		pkOfRow  []string
		fkLabels [][]string
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)

	raws := make(map[string]*rawTable, len(files))
	for _, name := range names {
		cr := csv.NewReader(files[name])
		cr.FieldsPerRecord = -1
		records, err := cr.ReadAll()
		if err != nil {
			return nil, fmt.Errorf("dataset: csv %s: %w", name, err)
		}
		if len(records) == 0 {
			return nil, fmt.Errorf("dataset: csv %s: missing header", name)
		}
		header := records[0]
		if len(header) == 0 || header[0] != "_pk" {
			return nil, fmt.Errorf("dataset: csv %s: first column must be _pk", name)
		}
		rt := &rawTable{name: name, pkToRow: make(map[string]int32)}
		seen := make(map[string]bool, len(header))
		for _, h := range header {
			if seen[h] {
				return nil, fmt.Errorf("dataset: csv %s: duplicate column %q", name, h)
			}
			seen[h] = true
		}
		for _, h := range header[1:] {
			if rest, ok := strings.CutPrefix(h, "fk_"); ok {
				fkName, to, found := strings.Cut(rest, "@")
				if !found {
					return nil, fmt.Errorf("dataset: csv %s: foreign key column %q must be fk_<name>@<table>", name, h)
				}
				rt.fkNames = append(rt.fkNames, fkName)
				rt.fkTo = append(rt.fkTo, to)
			} else {
				rt.attrs = append(rt.attrs, h)
			}
		}
		rt.cells = make([][]string, len(rt.attrs))
		rt.fkCells = make([][]string, len(rt.fkNames))
		for ri, rec := range records[1:] {
			if len(rec) != len(header) {
				return nil, fmt.Errorf("dataset: csv %s row %d: %d fields, want %d", name, ri+1, len(rec), len(header))
			}
			pk := rec[0]
			if _, dup := rt.pkToRow[pk]; dup {
				return nil, fmt.Errorf("dataset: csv %s: duplicate _pk %q", name, pk)
			}
			rt.pkToRow[pk] = int32(len(rt.pkOfRow))
			rt.pkOfRow = append(rt.pkOfRow, pk)
			col := 1
			for i := range rt.attrs {
				rt.cells[i] = append(rt.cells[i], rec[col])
				col++
			}
			for i := range rt.fkNames {
				rt.fkCells[i] = append(rt.fkCells[i], rec[col])
				col++
			}
		}
		raws[name] = rt
	}

	db := NewDatabase()
	for _, name := range names {
		rt := raws[name]
		schema := Schema{Name: name}
		codeMaps := make([]map[string]int32, len(rt.attrs))
		for i, an := range rt.attrs {
			distinct := make(map[string]bool)
			for _, v := range rt.cells[i] {
				distinct[v] = true
			}
			labels := make([]string, 0, len(distinct))
			for v := range distinct {
				labels = append(labels, v)
			}
			sort.Strings(labels)
			codeMaps[i] = make(map[string]int32, len(labels))
			for c, l := range labels {
				codeMaps[i][l] = int32(c)
			}
			schema.Attributes = append(schema.Attributes, Attribute{Name: an, Values: labels})
		}
		for i, fn := range rt.fkNames {
			schema.ForeignKeys = append(schema.ForeignKeys, ForeignKey{Name: fn, To: rt.fkTo[i]})
		}
		t := NewTable(schema)
		attrs := make([]int32, len(rt.attrs))
		refs := make([]int32, len(rt.fkNames))
		for r := range rt.pkOfRow {
			for i := range rt.attrs {
				attrs[i] = codeMaps[i][rt.cells[i][r]]
			}
			for i, to := range rt.fkTo {
				target, ok := raws[to]
				if !ok {
					return nil, fmt.Errorf("dataset: csv %s: foreign key %s references missing table %q", name, rt.fkNames[i], to)
				}
				ref, ok := target.pkToRow[rt.fkCells[i][r]]
				if !ok {
					return nil, fmt.Errorf("dataset: csv %s row %d: foreign key %s references missing _pk %q in %s",
						name, r, rt.fkNames[i], rt.fkCells[i][r], to)
				}
				refs[i] = ref
			}
			if err := t.AppendRow(attrs, refs); err != nil {
				return nil, err
			}
		}
		if err := db.AddTable(t); err != nil {
			return nil, err
		}
	}
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return db, nil
}
