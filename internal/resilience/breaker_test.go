package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerConsecutiveFailuresTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Name: "t", ConsecutiveFailures: 3, Now: clk.now})
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		b.Record(boom)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Record(boom)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", got)
	}
	err := b.Allow()
	if err == nil {
		t.Fatal("open breaker allowed a call")
	}
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("refusal does not match ErrOpen: %v", err)
	}
	var oe *OpenError
	if !errors.As(err, &oe) || oe.RetryAfter < time.Second {
		t.Fatalf("refusal = %#v, want *OpenError with RetryAfter >= 1s", err)
	}
	// A success interleaved with failures must reset the streak.
	clk.advance(time.Hour)
	b2 := NewBreaker(BreakerConfig{Name: "t2", ConsecutiveFailures: 3, Now: clk.now})
	b2.Record(boom)
	b2.Record(boom)
	b2.Record(nil)
	b2.Record(boom)
	b2.Record(boom)
	if got := b2.State(); got != BreakerClosed {
		t.Fatalf("state with interleaved success = %v, want closed", got)
	}
}

func TestBreakerErrorRateTrip(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Name:                "t",
		ConsecutiveFailures: 1000, // keep the streak trip out of the way
		ErrorRate:           0.5,
		MinSamples:          10,
		Window:              30 * time.Second,
		Now:                 clk.now,
	})
	boom := errors.New("boom")
	// Alternate success/failure: 50% error rate, but below MinSamples no trip.
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			b.Record(boom)
		} else {
			b.Record(nil)
		}
		clk.advance(200 * time.Millisecond)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state below MinSamples = %v, want closed", got)
	}
	b.Record(boom)
	b.Record(nil)
	// 10 samples, 5 bad: rate 0.5 >= 0.5 trips.
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state at 50%% over %d samples = %v, want open", 10, got)
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Name:                "t",
		ConsecutiveFailures: 1,
		Cooldown:            5 * time.Second,
		SuccessesToClose:    2,
		ProbeChance:         1.0, // every half-open call probes: deterministic
		Now:                 clk.now,
	})
	b.Record(errors.New("boom"))
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if err := b.Allow(); err == nil {
		t.Fatal("open breaker allowed before cooldown")
	}
	clk.advance(5 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after 1 probe success = %v, want half-open", got)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Record(nil)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after %d probe successes = %v, want closed", 2, got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{
		Name:                "t",
		ConsecutiveFailures: 1,
		Cooldown:            time.Second,
		ProbeChance:         1.0,
		Now:                 clk.now,
	})
	b.Record(errors.New("boom"))
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(errors.New("still broken"))
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after probe failure = %v, want open", got)
	}
	st := b.Status()
	if st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	var seq []string
	b := NewBreaker(BreakerConfig{
		Name:                "t",
		ConsecutiveFailures: 1,
		Cooldown:            time.Second,
		SuccessesToClose:    1,
		ProbeChance:         1.0,
		Now:                 clk.now,
		OnTransition: func(from, to BreakerState) {
			mu.Lock()
			seq = append(seq, from.String()+">"+to.String())
			mu.Unlock()
		},
	})
	b.Record(errors.New("boom"))
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(nil)
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	mu.Lock()
	defer mu.Unlock()
	if len(seq) != len(want) {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seq, want)
		}
	}
}

// TestBreakerConcurrent hammers Allow/Record/Status from many goroutines
// under -race; the assertion is simply that invariants hold and nothing
// races or deadlocks.
func TestBreakerConcurrent(t *testing.T) {
	b := NewBreaker(BreakerConfig{
		Name:                "t",
		ConsecutiveFailures: 5,
		Cooldown:            time.Millisecond,
		Window:              2 * time.Second,
	})
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := b.Allow(); err != nil {
					var oe *OpenError
					if !errors.As(err, &oe) {
						t.Errorf("refusal is not *OpenError: %v", err)
						return
					}
					continue
				}
				if (g+i)%3 == 0 {
					b.Record(boom)
				} else {
					b.Record(nil)
				}
				if i%100 == 0 {
					_ = b.Status()
					_ = b.State()
				}
			}
		}(g)
	}
	wg.Wait()
	switch st := b.State(); st {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
	default:
		t.Fatalf("invalid final state %v", st)
	}
}

func TestNilBreakerIsNoop(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil breaker refused: %v", err)
	}
	b.Record(errors.New("boom"))
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
	if st := b.Status(); st.Name != "" {
		t.Fatalf("nil breaker status = %+v, want zero", st)
	}
}
