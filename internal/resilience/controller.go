package resilience

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// State is a brownout level. Levels are ordered: each one gives up more
// answer quality to buy back latency and memory headroom, and Shed is
// the last stop before the process would fall over on its own terms.
type State int32

const (
	// Normal serves the full tier chain with configured capacities.
	Normal State = iota
	// Brownout1 skips the exact tier (answers start at the approximate
	// tier) and thins journal sampling.
	Brownout1
	// Brownout2 serves AVI-only answers, shrinks the inference and plan
	// caches, and tightens admission.
	Brownout2
	// Shed refuses cache-missing estimate work outright with 503 +
	// Retry-After; cache hits are still served.
	Shed
)

func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Brownout1:
		return "brownout1"
	case Brownout2:
		return "brownout2"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// Signals is one sample of the server's health, taken every tick.
type Signals struct {
	// Burn is the worst SLO burn rate over the shortest window (1.0 =
	// consuming error budget exactly as fast as allowed).
	Burn float64
	// QueueFrac is admission queue depth / queue capacity, in [0, 1].
	QueueFrac float64
	// AdmitFrac is admitted weight / admission capacity. It is reported
	// in Status for operators but does not feed pressure: a fully busy
	// semaphore with an empty queue is a healthy server at capacity.
	AdmitFrac float64
	// MemFrac is heap-in-use / soft memory limit; 0 disables the signal.
	MemFrac float64
}

// ControllerConfig tunes the brownout feedback loop. Zero fields get
// defaults from NewController.
type ControllerConfig struct {
	// Tick is the sampling period (default 1s).
	Tick time.Duration
	// Enter holds the pressure thresholds at which Brownout1, Brownout2,
	// and Shed engage (default {1, 2, 4}).
	Enter [3]float64
	// ExitFrac scales an Enter threshold down to its release threshold
	// (default 0.5): a level is left only once pressure falls below
	// Enter[level-1]*ExitFrac, which is the hysteresis band that stops
	// flapping right at the boundary.
	ExitFrac float64
	// EscalateTicks is how many consecutive ticks pressure must demand a
	// higher state before the controller escalates (default 2).
	EscalateTicks int
	// ReleaseTicks is how many consecutive ticks pressure must sit below
	// the release threshold before the controller steps down one level
	// (default 3) — recovery is deliberately slower than escalation.
	ReleaseTicks int
	// BurnRef is the burn rate that alone yields pressure 1.0 (default 2,
	// i.e. eating budget at twice the sustainable rate).
	BurnRef float64
	// QueueRef is the queue fraction that alone yields pressure 1.0
	// (default 0.5).
	QueueRef float64
	// MemRef is the memory fraction that alone yields pressure 1.0
	// (default 0.9).
	MemRef float64
	// Source samples the server's signals; called once per tick from the
	// controller goroutine. Required for Start; Step can be driven
	// directly in tests without it.
	Source func() Signals
	// OnTransition runs on the controller goroutine after every state
	// change. The serve layer actuates its knobs here.
	OnTransition func(from, to State, pressure float64)
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Controller is the brownout feedback loop. Step is single-goroutine
// (the tick loop, or a test driving it directly); State, Pressure, and
// Status are safe to read from anywhere.
type Controller struct {
	cfg ControllerConfig

	state       atomic.Int32
	pressure    atomic.Uint64 // math.Float64bits
	transitions atomic.Int64
	sinceNS     atomic.Int64 // wall clock of the last transition

	// Tick-loop-private hysteresis counters.
	above, below int

	startOnce, stopOnce sync.Once
	stopc               chan struct{}
	done                chan struct{}
}

// NewController builds a controller from cfg with defaults applied. It
// does not start the tick loop; call Start (or drive Step directly).
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.Enter == [3]float64{} {
		cfg.Enter = [3]float64{1, 2, 4}
	}
	if cfg.ExitFrac <= 0 || cfg.ExitFrac >= 1 {
		cfg.ExitFrac = 0.5
	}
	if cfg.EscalateTicks <= 0 {
		cfg.EscalateTicks = 2
	}
	if cfg.ReleaseTicks <= 0 {
		cfg.ReleaseTicks = 3
	}
	if cfg.BurnRef <= 0 {
		cfg.BurnRef = 2
	}
	if cfg.QueueRef <= 0 {
		cfg.QueueRef = 0.5
	}
	if cfg.MemRef <= 0 {
		cfg.MemRef = 0.9
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	c := &Controller{
		cfg:   cfg,
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	c.sinceNS.Store(cfg.Now().UnixNano())
	return c
}

// Pressure folds one signal sample into a single scalar: the max of the
// normalized signals, so whichever resource is most stressed dictates
// the state. 1.0 is the Brownout1 boundary by default.
func (c *Controller) Pressure(sig Signals) float64 {
	p := sig.Burn / c.cfg.BurnRef
	if q := sig.QueueFrac / c.cfg.QueueRef; q > p {
		p = q
	}
	if sig.MemFrac > 0 {
		if m := sig.MemFrac / c.cfg.MemRef; m > p {
			p = m
		}
	}
	return p
}

// target maps a pressure value to the state it asks for.
func (c *Controller) target(p float64) State {
	switch {
	case p >= c.cfg.Enter[2]:
		return Shed
	case p >= c.cfg.Enter[1]:
		return Brownout2
	case p >= c.cfg.Enter[0]:
		return Brownout1
	}
	return Normal
}

// Step folds one sample into the hysteresis state machine. Escalation
// jumps straight to the demanded state after EscalateTicks consecutive
// ticks above it; release steps down one level at a time after
// ReleaseTicks consecutive ticks below the current level's exit
// threshold. The two counters reset each other, so oscillation around a
// boundary holds the current state. Not safe for concurrent callers —
// the tick loop is the only writer.
func (c *Controller) Step(sig Signals) {
	p := c.Pressure(sig)
	c.pressure.Store(math.Float64bits(p))
	cur := State(c.state.Load())
	want := c.target(p)

	if want > cur {
		c.above++
		c.below = 0
		if c.above >= c.cfg.EscalateTicks {
			c.transition(cur, want, p)
			c.above = 0
		}
		return
	}
	c.above = 0
	if cur == Normal {
		c.below = 0
		return
	}
	// Exit threshold for the current level, scaled by the hysteresis
	// band: we only step down once pressure is comfortably below the
	// level's entry point.
	exit := c.cfg.Enter[cur-1] * c.cfg.ExitFrac
	if p < exit {
		c.below++
		if c.below >= c.cfg.ReleaseTicks {
			c.transition(cur, cur-1, p)
			c.below = 0
		}
	} else {
		c.below = 0
	}
}

func (c *Controller) transition(from, to State, pressure float64) {
	c.state.Store(int32(to))
	c.transitions.Add(1)
	c.sinceNS.Store(c.cfg.Now().UnixNano())
	if c.cfg.OnTransition != nil {
		c.cfg.OnTransition(from, to, pressure)
	}
}

// Start launches the tick loop; it needs cfg.Source. Idempotent.
func (c *Controller) Start() {
	if c.cfg.Source == nil {
		return
	}
	c.startOnce.Do(func() {
		go c.run()
	})
}

// run is the tick loop. The whole steady-state path — Source, Pressure,
// Step — is allocation-free by design: background ticks must not
// perturb the serve layer's AllocsPerRun guard tests, and a controller
// that allocates under memory pressure is working against itself.
func (c *Controller) run() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Step(c.cfg.Source())
		case <-c.stopc:
			return
		}
	}
}

// Stop halts the tick loop and waits for it to exit. Safe to call
// multiple times, and before Start (which then becomes a no-op).
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopc) })
	// If Start never ran (or never will), claim the once ourselves so
	// done is closed either way.
	c.startOnce.Do(func() { close(c.done) })
	<-c.done
}

// State returns the current brownout level.
func (c *Controller) State() State {
	if c == nil {
		return Normal
	}
	return State(c.state.Load())
}

// PressureValue returns the last sampled pressure scalar.
func (c *Controller) PressureValue() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.pressure.Load())
}

// Transitions returns the lifetime state-change count.
func (c *Controller) Transitions() int64 {
	if c == nil {
		return 0
	}
	return c.transitions.Load()
}

// RetryAfter is the backoff to advertise on shed responses: the
// earliest the controller could possibly have stepped down a level.
func (c *Controller) RetryAfter() time.Duration {
	if c == nil {
		return time.Second
	}
	d := c.cfg.Tick * time.Duration(c.cfg.ReleaseTicks)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// ControllerStatus is the controller's health snapshot.
type ControllerStatus struct {
	State       string    `json:"state"`
	Pressure    float64   `json:"pressure"`
	Since       time.Time `json:"since"`
	Transitions int64     `json:"transitions"`
}

// Status snapshots the controller for health output.
func (c *Controller) Status() ControllerStatus {
	if c == nil {
		return ControllerStatus{State: Normal.String()}
	}
	return ControllerStatus{
		State:       c.State().String(),
		Pressure:    c.PressureValue(),
		Since:       time.Unix(0, c.sinceNS.Load()),
		Transitions: c.transitions.Load(),
	}
}
