// Package resilience is the server's self-protection layer: a brownout
// controller that walks the service through explicit degradation states
// when its SLO burn, queue depth, or memory pressure say it is unhealthy,
// and circuit breakers that make persistently failing dependencies (a
// broken fsync, a dead WAL) fail fast instead of queueing work behind
// them. The package is deliberately mechanism-only: it reads signals and
// reports states; the serve layer owns what each state actually does.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes every call through, counting outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every call until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets a random fraction of calls probe the
	// dependency; a probe failure reopens, enough successes close.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// ErrOpen is the sentinel every breaker refusal matches via errors.Is,
// so callers can classify without knowing the breaker by name.
var ErrOpen = errors.New("resilience: circuit breaker open")

// OpenError is a refusal from Allow: the breaker is open (or half-open
// and this call lost the probe draw). RetryAfter is how long the caller
// should tell its client to back off — the remaining cooldown, floored
// at one second.
type OpenError struct {
	Name       string
	RetryAfter time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: %s circuit open; retry in %v", e.Name, e.RetryAfter.Round(time.Second))
}

// Is makes errors.Is(err, ErrOpen) match every OpenError.
func (e *OpenError) Is(target error) bool { return target == ErrOpen }

// BreakerConfig tunes one breaker. The zero value of every field gets a
// sensible default from NewBreaker.
type BreakerConfig struct {
	// Name labels the breaker in errors, metrics, and health.
	Name string
	// ConsecutiveFailures trips the breaker after this many failures in a
	// row (default 5).
	ConsecutiveFailures int
	// ErrorRate trips the breaker when the rolling-window failure
	// fraction reaches it (default 0.5), once MinSamples outcomes are in
	// the window.
	ErrorRate float64
	// MinSamples is the minimum window population before ErrorRate can
	// trip (default 20) — a single failure out of two calls is not a
	// statement about the dependency.
	MinSamples int
	// Window is the rolling error-rate window (default 30s).
	Window time.Duration
	// Cooldown is how long an open breaker refuses before moving to
	// half-open (default 5s).
	Cooldown time.Duration
	// SuccessesToClose closes a half-open breaker after this many probe
	// successes (default 2).
	SuccessesToClose int
	// ProbeChance is the fraction of half-open calls admitted as probes
	// (default 0.25); the rest are refused, so a recovering dependency is
	// not instantly re-saturated by the backlog.
	ProbeChance float64
	// Seed drives the probe draw (default 1; deterministic for tests).
	Seed int64
	// Now overrides the clock (tests).
	Now func() time.Time
	// OnTransition, when non-nil, runs (under no breaker lock being
	// needed by the callee) on every state change.
	OnTransition func(from, to BreakerState)
}

// breakerCell is one second of outcome history.
type breakerCell struct {
	epoch     int64
	good, bad int64
}

// Breaker is a closed/open/half-open circuit breaker with both a
// consecutive-failure trip and a rolling-error-rate trip, and
// probabilistic half-open probes. All methods are safe for concurrent
// use; a nil *Breaker allows everything and records nothing.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	consec   int       // consecutive failures while closed
	probeOK  int       // probe successes while half-open
	openedAt time.Time // when the breaker last opened
	cells    []breakerCell
	opens    int64
	rng      *rand.Rand
}

// NewBreaker builds a breaker from cfg with defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Name == "" {
		cfg.Name = "breaker"
	}
	if cfg.ConsecutiveFailures <= 0 {
		cfg.ConsecutiveFailures = 5
	}
	if cfg.ErrorRate <= 0 {
		cfg.ErrorRate = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 20
	}
	if cfg.Window <= 0 {
		cfg.Window = 30 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.SuccessesToClose <= 0 {
		cfg.SuccessesToClose = 2
	}
	if cfg.ProbeChance <= 0 {
		cfg.ProbeChance = 0.25
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	secs := int64(cfg.Window / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &Breaker{
		cfg:   cfg,
		cells: make([]breakerCell, secs+1),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Allow reports whether a call may proceed. Closed always allows. Open
// refuses with an *OpenError until the cooldown elapses, at which point
// the breaker moves to half-open. Half-open admits a ProbeChance
// fraction of calls (the probes — their Record outcome decides the
// breaker's fate) and refuses the rest.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	if b.state == BreakerOpen {
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return &OpenError{Name: b.cfg.Name, RetryAfter: b.retryAfterLocked(now)}
		}
		b.setStateLocked(BreakerHalfOpen)
		b.probeOK = 0
	}
	if b.state == BreakerHalfOpen {
		if b.rng.Float64() < b.cfg.ProbeChance {
			return nil // this call is a probe
		}
		return &OpenError{Name: b.cfg.Name, RetryAfter: time.Second}
	}
	return nil
}

// Record feeds one call outcome (err != nil is a failure). While closed
// it updates the trip conditions; while half-open it decides between
// reopening (any failure) and closing (SuccessesToClose successes);
// while open it is ignored — stragglers from before the trip carry no
// new information.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	fail := err != nil
	switch b.state {
	case BreakerOpen:
		return
	case BreakerHalfOpen:
		if fail {
			b.openLocked(now)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.SuccessesToClose {
			b.setStateLocked(BreakerClosed)
			b.consec = 0
			b.resetWindowLocked()
		}
		return
	}
	// Closed: window bookkeeping plus both trip conditions.
	c := b.cellLocked(now)
	if fail {
		c.bad++
		b.consec++
	} else {
		c.good++
		b.consec = 0
	}
	if b.consec >= b.cfg.ConsecutiveFailures {
		b.openLocked(now)
		return
	}
	good, bad := b.windowLocked(now)
	if total := good + bad; total >= int64(b.cfg.MinSamples) &&
		float64(bad)/float64(total) >= b.cfg.ErrorRate {
		b.openLocked(now)
	}
}

// cellLocked returns the ring cell for the current second, resetting it
// when the second is new.
func (b *Breaker) cellLocked(now time.Time) *breakerCell {
	sec := now.Unix()
	c := &b.cells[sec%int64(len(b.cells))]
	if c.epoch != sec {
		c.epoch, c.good, c.bad = sec, 0, 0
	}
	return c
}

// windowLocked sums outcomes over the rolling window.
func (b *Breaker) windowLocked(now time.Time) (good, bad int64) {
	sec := now.Unix()
	span := int64(len(b.cells)) - 1
	for d := int64(0); d < span; d++ {
		c := &b.cells[(sec-d)%int64(len(b.cells))]
		if c.epoch == sec-d {
			good += c.good
			bad += c.bad
		}
	}
	return good, bad
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.cells {
		b.cells[i] = breakerCell{}
	}
}

func (b *Breaker) openLocked(now time.Time) {
	b.openedAt = now
	b.probeOK = 0
	b.consec = 0
	b.opens++
	b.setStateLocked(BreakerOpen)
}

func (b *Breaker) setStateLocked(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

func (b *Breaker) retryAfterLocked(now time.Time) time.Duration {
	d := b.cfg.Cooldown - now.Sub(b.openedAt)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// Name returns the breaker's label ("" on nil).
func (b *Breaker) Name() string {
	if b == nil {
		return ""
	}
	return b.cfg.Name
}

// State returns the current state (BreakerClosed on nil).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerStatus is one breaker's health snapshot.
type BreakerStatus struct {
	Name                string  `json:"name"`
	State               string  `json:"state"`
	ConsecutiveFailures int     `json:"consecutive_failures,omitempty"`
	WindowGood          int64   `json:"window_good"`
	WindowBad           int64   `json:"window_bad"`
	Opens               int64   `json:"opens"`
	RetryAfterSeconds   float64 `json:"retry_after_seconds,omitempty"`
}

// Status snapshots the breaker for health output (zero value on nil).
func (b *Breaker) Status() BreakerStatus {
	if b == nil {
		return BreakerStatus{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	good, bad := b.windowLocked(now)
	st := BreakerStatus{
		Name:                b.cfg.Name,
		State:               b.state.String(),
		ConsecutiveFailures: b.consec,
		WindowGood:          good,
		WindowBad:           bad,
		Opens:               b.opens,
	}
	if b.state == BreakerOpen {
		st.RetryAfterSeconds = b.retryAfterLocked(now).Seconds()
	}
	return st
}
