package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func stepN(c *Controller, n int, sig Signals) {
	for i := 0; i < n; i++ {
		c.Step(sig)
	}
}

func TestControllerEscalatesAfterConsecutiveTicks(t *testing.T) {
	c := NewController(ControllerConfig{EscalateTicks: 2, ReleaseTicks: 3})
	// One hot tick is noise, not a trend.
	c.Step(Signals{Burn: 3}) // pressure 1.5 -> wants brownout1
	if got := c.State(); got != Normal {
		t.Fatalf("state after 1 hot tick = %v, want normal", got)
	}
	c.Step(Signals{Burn: 3})
	if got := c.State(); got != Brownout1 {
		t.Fatalf("state after 2 hot ticks = %v, want brownout1", got)
	}
}

func TestControllerEscalationJumpsToDemandedState(t *testing.T) {
	c := NewController(ControllerConfig{EscalateTicks: 2, ReleaseTicks: 3})
	// Pressure 8/2 = 4 demands shed directly; no ladder-climbing through
	// intermediate states while the server is on fire.
	stepN(c, 2, Signals{Burn: 8})
	if got := c.State(); got != Shed {
		t.Fatalf("state = %v, want shed", got)
	}
}

// TestControllerHysteresisNoFlap oscillates pressure right at the
// Brownout1 boundary: the state must hold, not flap.
func TestControllerHysteresisNoFlap(t *testing.T) {
	var transitions atomic.Int64
	c := NewController(ControllerConfig{
		EscalateTicks: 2,
		ReleaseTicks:  3,
		OnTransition:  func(from, to State, p float64) { transitions.Add(1) },
	})
	// Enter brownout1 cleanly.
	stepN(c, 2, Signals{Burn: 2.2}) // pressure 1.1
	if got := c.State(); got != Brownout1 {
		t.Fatalf("setup: state = %v, want brownout1", got)
	}
	base := transitions.Load()
	// Oscillate around the entry threshold (pressure alternating 1.1 /
	// 0.9). 0.9 is above the exit threshold (1.0 * 0.5 = 0.5), so the
	// release counter must never fire; 1.1 never holds for EscalateTicks
	// toward a higher state either.
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			c.Step(Signals{Burn: 2.2})
		} else {
			c.Step(Signals{Burn: 1.8})
		}
	}
	if got := c.State(); got != Brownout1 {
		t.Fatalf("state after oscillation = %v, want brownout1", got)
	}
	if got := transitions.Load(); got != base {
		t.Fatalf("transitions during boundary oscillation = %d, want 0", got-base)
	}
}

// TestControllerRecoveryToNormal walks the controller up to shed and
// verifies it steps back down one level at a time once pressure clears,
// ending at normal.
func TestControllerRecoveryToNormal(t *testing.T) {
	var mu sync.Mutex
	var seq []State
	c := NewController(ControllerConfig{
		EscalateTicks: 2,
		ReleaseTicks:  3,
		OnTransition: func(from, to State, p float64) {
			mu.Lock()
			seq = append(seq, to)
			mu.Unlock()
		},
	})
	stepN(c, 2, Signals{Burn: 10})
	if got := c.State(); got != Shed {
		t.Fatalf("setup: state = %v, want shed", got)
	}
	// Faults clear: pressure 0. Each level needs ReleaseTicks ticks.
	stepN(c, 3, Signals{})
	if got := c.State(); got != Brownout2 {
		t.Fatalf("after 3 calm ticks state = %v, want brownout2", got)
	}
	stepN(c, 3, Signals{})
	if got := c.State(); got != Brownout1 {
		t.Fatalf("after 6 calm ticks state = %v, want brownout1", got)
	}
	stepN(c, 3, Signals{})
	if got := c.State(); got != Normal {
		t.Fatalf("after 9 calm ticks state = %v, want normal", got)
	}
	// Further calm ticks must not underflow or re-transition.
	stepN(c, 5, Signals{})
	if got := c.State(); got != Normal {
		t.Fatalf("state = %v, want normal", got)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []State{Shed, Brownout2, Brownout1, Normal}
	if len(seq) != len(want) {
		t.Fatalf("transition sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transition sequence = %v, want %v", seq, want)
		}
	}
}

// TestControllerPartialRecoveryReescalates checks the release counter
// resets when pressure comes back mid-recovery.
func TestControllerPartialRecoveryReescalates(t *testing.T) {
	c := NewController(ControllerConfig{EscalateTicks: 2, ReleaseTicks: 3})
	stepN(c, 2, Signals{Burn: 5}) // pressure 2.5 -> brownout2
	if got := c.State(); got != Brownout2 {
		t.Fatalf("setup: state = %v, want brownout2", got)
	}
	// Two calm ticks, then pressure returns before the third.
	stepN(c, 2, Signals{})
	c.Step(Signals{Burn: 3})
	stepN(c, 2, Signals{})
	if got := c.State(); got != Brownout2 {
		t.Fatalf("state = %v, want brownout2 (release counter must reset)", got)
	}
}

func TestControllerPressureIsMaxOfSignals(t *testing.T) {
	c := NewController(ControllerConfig{})
	// Defaults: BurnRef 2, QueueRef 0.5, MemRef 0.9.
	if got := c.Pressure(Signals{Burn: 4}); got != 2 {
		t.Fatalf("burn pressure = %v, want 2", got)
	}
	if got := c.Pressure(Signals{QueueFrac: 0.5}); got != 1 {
		t.Fatalf("queue pressure = %v, want 1", got)
	}
	if got := c.Pressure(Signals{Burn: 1, QueueFrac: 1, MemFrac: 0.45}); got != 2 {
		t.Fatalf("max pressure = %v, want 2 (queue dominates)", got)
	}
	// MemFrac 0 disables the memory signal entirely.
	if got := c.Pressure(Signals{}); got != 0 {
		t.Fatalf("idle pressure = %v, want 0", got)
	}
	// AdmitFrac is observability-only.
	if got := c.Pressure(Signals{AdmitFrac: 1}); got != 0 {
		t.Fatalf("admit-only pressure = %v, want 0", got)
	}
}

func TestControllerTickLoopAndStop(t *testing.T) {
	var sig atomic.Int64 // burn x10
	c := NewController(ControllerConfig{
		Tick:          2 * time.Millisecond,
		EscalateTicks: 2,
		ReleaseTicks:  2,
		Source: func() Signals {
			return Signals{Burn: float64(sig.Load()) / 10}
		},
	})
	c.Start()
	sig.Store(60) // pressure 3 -> brownout2
	deadline := time.Now().Add(2 * time.Second)
	for c.State() != Brownout2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.State(); got != Brownout2 {
		t.Fatalf("tick loop never escalated: state = %v", got)
	}
	sig.Store(0)
	for c.State() != Normal && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.State(); got != Normal {
		t.Fatalf("tick loop never recovered: state = %v", got)
	}
	c.Stop()
	c.Stop() // idempotent
	st := c.Status()
	if st.State != "normal" || st.Transitions < 2 {
		t.Fatalf("status = %+v, want normal with >=2 transitions", st)
	}
}

func TestControllerStopBeforeStart(t *testing.T) {
	c := NewController(ControllerConfig{Source: func() Signals { return Signals{} }})
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop before Start deadlocked")
	}
	c.Start() // must be a no-op now
}

// TestControllerStepAllocFree pins the per-tick steady-state path at
// zero allocations: the background controller must not perturb the
// serve layer's AllocsPerRun guard tests.
func TestControllerStepAllocFree(t *testing.T) {
	c := NewController(ControllerConfig{})
	sig := Signals{Burn: 0.4, QueueFrac: 0.1}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Step(sig)
		_ = c.State()
		_ = c.PressureValue()
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %v per run, want 0", allocs)
	}
}
