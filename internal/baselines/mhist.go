package baselines

import (
	"fmt"

	"prmsel/internal/dataset"
	"prmsel/internal/query"
)

// MHist is a multidimensional histogram over a fixed subset of one table's
// attributes, built MHIST-style: starting from a single bucket covering the
// whole joint value space, it repeatedly applies the binary split (over any
// bucket, dimension, and boundary) that most reduces the within-bucket
// variance of cell frequencies — the greedy form of Poosala & Ioannidis'
// V-Optimal(V,A) construction — until the byte budget is exhausted.
// Frequency is assumed uniform across the cells inside a bucket.
type MHist struct {
	table   string
	attrs   []string
	cards   []int
	buckets []mbucket
	total   int64
	bytes   int
}

var _ Estimator = (*MHist)(nil)

// mbucket is one hyperrectangle [lo, hi) with its total frequency and the
// non-zero cells it contains.
type mbucket struct {
	lo, hi []int32 // per dimension, hi exclusive
	count  float64
	cells  []mcell
}

type mcell struct {
	vals []int32
	f    float64
}

// numCells returns the number of (possibly empty) cells in the bucket.
func (b *mbucket) numCells() float64 {
	n := 1.0
	for d := range b.lo {
		n *= float64(b.hi[d] - b.lo[d])
	}
	return n
}

// sse is the sum of squared deviations of the bucket's cell frequencies
// from their mean — the quantity greedy V-Optimal splitting minimizes.
func (b *mbucket) sse() float64 {
	var sum, sum2 float64
	for _, c := range b.cells {
		sum += c.f
		sum2 += c.f * c.f
	}
	n := b.numCells()
	if n == 0 {
		return 0
	}
	return sum2 - sum*sum/n
}

// NewMHist builds a histogram over the named attributes of t with at most
// budgetBytes of storage. Each bucket costs 2·dims boundary codes plus one
// count.
func NewMHist(t *dataset.Table, attrs []string, budgetBytes int) (*MHist, error) {
	h := &MHist{table: t.Name, attrs: append([]string(nil), attrs...), total: int64(t.Len())}
	cols := make([][]int32, len(attrs))
	for i, a := range attrs {
		ai := t.AttrIndex(a)
		if ai < 0 {
			return nil, fmt.Errorf("baselines: mhist: table %s has no attribute %q", t.Name, a)
		}
		cols[i] = t.Col(ai)
		h.cards = append(h.cards, t.Attributes[ai].Card())
	}
	// Joint contingency (sparse).
	strides := make([]uint64, len(attrs))
	s := uint64(1)
	for i, c := range h.cards {
		strides[i] = s
		s *= uint64(c)
	}
	freq := make(map[uint64]float64)
	for r := 0; r < t.Len(); r++ {
		var k uint64
		for i := range cols {
			k += uint64(cols[i][r]) * strides[i]
		}
		freq[k]++
	}
	root := mbucket{lo: make([]int32, len(attrs)), hi: make([]int32, len(attrs))}
	for d, c := range h.cards {
		root.hi[d] = int32(c)
	}
	for k, f := range freq {
		vals := make([]int32, len(attrs))
		for i := range vals {
			vals[i] = int32(k / strides[i] % uint64(h.cards[i]))
		}
		root.cells = append(root.cells, mcell{vals: vals, f: f})
		root.count += f
	}
	h.buckets = []mbucket{root}

	bucketBytes := 2*len(attrs)*BytesPerCode + BytesPerCount
	maxBuckets := budgetBytes / bucketBytes
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	for len(h.buckets) < maxBuckets {
		bi, d, at, gain := h.bestSplit()
		if bi < 0 || gain <= 0 {
			break
		}
		left, right := splitBucket(&h.buckets[bi], d, at)
		h.buckets[bi] = left
		h.buckets = append(h.buckets, right)
	}
	h.bytes = len(h.buckets) * bucketBytes
	return h, nil
}

// bestSplit scans every bucket, dimension, and boundary for the split with
// the largest SSE reduction.
func (h *MHist) bestSplit() (bucket, dim int, at int32, gain float64) {
	bucket, dim, at, gain = -1, -1, 0, 0
	for bi := range h.buckets {
		b := &h.buckets[bi]
		base := b.sse()
		if base <= 0 {
			continue
		}
		for d := range b.lo {
			if b.hi[d]-b.lo[d] < 2 {
				continue
			}
			// Per-boundary aggregates along dimension d.
			width := int(b.hi[d] - b.lo[d])
			sum := make([]float64, width)
			sum2 := make([]float64, width)
			for _, c := range b.cells {
				i := int(c.vals[d] - b.lo[d])
				sum[i] += c.f
				sum2[i] += c.f * c.f
			}
			cellsPerSlice := b.numCells() / float64(width)
			var ls, ls2 float64
			var ts, ts2 float64
			for i := 0; i < width; i++ {
				ts += sum[i]
				ts2 += sum2[i]
			}
			for i := 0; i < width-1; i++ {
				ls += sum[i]
				ls2 += sum2[i]
				leftCells := cellsPerSlice * float64(i+1)
				rightCells := cellsPerSlice * float64(width-i-1)
				sse := ls2 - ls*ls/leftCells + (ts2 - ls2) - (ts-ls)*(ts-ls)/rightCells
				if g := base - sse; g > gain {
					bucket, dim, at, gain = bi, d, b.lo[d]+int32(i+1), g
				}
			}
		}
	}
	return bucket, dim, at, gain
}

// splitBucket cuts b along dimension d at boundary `at` (left gets values
// < at).
func splitBucket(b *mbucket, d int, at int32) (left, right mbucket) {
	left = mbucket{lo: append([]int32(nil), b.lo...), hi: append([]int32(nil), b.hi...)}
	right = mbucket{lo: append([]int32(nil), b.lo...), hi: append([]int32(nil), b.hi...)}
	left.hi[d] = at
	right.lo[d] = at
	for _, c := range b.cells {
		if c.vals[d] < at {
			left.cells = append(left.cells, c)
			left.count += c.f
		} else {
			right.cells = append(right.cells, c)
			right.count += c.f
		}
	}
	return left, right
}

// Name implements Estimator.
func (h *MHist) Name() string { return "MHIST" }

// StorageBytes implements Estimator.
func (h *MHist) StorageBytes() int { return h.bytes }

// EstimateCount implements Estimator. The query must range over the
// histogram's table; predicates on attributes outside the histogram's
// subset are rejected. Each bucket contributes its count scaled by the
// fraction of its cells that fall inside the query box (uniformity within
// the bucket).
func (h *MHist) EstimateCount(q *query.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if len(q.Vars) != 1 || len(q.Joins) != 0 || len(q.NonKeyJoins) != 0 {
		return 0, fmt.Errorf("baselines: mhist answers single-table select queries only")
	}
	for _, tn := range q.Vars {
		if tn != h.table {
			return 0, fmt.Errorf("baselines: mhist is over table %s, query over %s", h.table, tn)
		}
	}
	// accept[d] = allowed codes for dimension d (nil = all).
	accept := make([]map[int32]bool, len(h.attrs))
	for _, p := range q.Preds {
		d := -1
		for i, a := range h.attrs {
			if a == p.Attr {
				d = i
				break
			}
		}
		if d < 0 {
			return 0, fmt.Errorf("baselines: mhist does not cover attribute %q", p.Attr)
		}
		set, err := p.Accept(h.cards[d])
		if err != nil {
			return 0, fmt.Errorf("baselines: %w", err)
		}
		if accept[d] != nil {
			for v := range accept[d] {
				if !set[v] {
					delete(accept[d], v)
				}
			}
		} else {
			accept[d] = set
		}
	}
	var est float64
	for bi := range h.buckets {
		b := &h.buckets[bi]
		if b.count == 0 {
			continue
		}
		// Fraction of the bucket's cells inside the query box.
		frac := 1.0
		for d := range h.attrs {
			if accept[d] == nil {
				continue
			}
			inside := 0
			for v := b.lo[d]; v < b.hi[d]; v++ {
				if accept[d][v] {
					inside++
				}
			}
			frac *= float64(inside) / float64(b.hi[d]-b.lo[d])
			if frac == 0 {
				break
			}
		}
		est += b.count * frac
	}
	return est, nil
}
