package baselines

import (
	"fmt"

	"prmsel/internal/dataset"
	"prmsel/internal/query"
)

// AVI estimates under the two assumptions commercial optimizers of the
// paper's era made: attribute value independence (the joint distribution is
// the product of the per-attribute marginals, kept as exact one-dimensional
// histograms) and join uniformity (a tuple joins any tuple of the
// referenced table with probability 1/|S|).
type AVI struct {
	// hist[table][attr] holds P(attr = v) per value code.
	hist      map[string][][]float64
	attrNames map[string][]string
	sizes     map[string]int64
	bytes     int
}

var _ Estimator = (*AVI)(nil)

// NewAVI builds the per-attribute histograms for every table of db.
func NewAVI(db *dataset.Database) *AVI {
	a := &AVI{
		hist:      make(map[string][][]float64),
		attrNames: make(map[string][]string),
		sizes:     make(map[string]int64),
	}
	for _, tn := range db.TableNames() {
		t := db.Table(tn)
		a.sizes[tn] = int64(t.Len())
		hs := make([][]float64, len(t.Attributes))
		names := make([]string, len(t.Attributes))
		for ai, attr := range t.Attributes {
			names[ai] = attr.Name
			counts := t.AttrCounts(ai)
			h := make([]float64, len(counts))
			if t.Len() > 0 {
				for v, c := range counts {
					h[v] = float64(c) / float64(t.Len())
				}
			}
			hs[ai] = h
			a.bytes += len(h) * BytesPerCount
		}
		a.hist[tn] = hs
		a.attrNames[tn] = names
	}
	return a
}

// Name implements Estimator.
func (a *AVI) Name() string { return "AVI" }

// StorageBytes implements Estimator.
func (a *AVI) StorageBytes() int { return a.bytes }

// EstimateCount implements Estimator: product of table sizes, times the
// product of per-predicate marginal selectivities, times 1/|S| per join.
func (a *AVI) EstimateCount(q *query.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	est := 1.0
	for _, tn := range q.Vars {
		sz, ok := a.sizes[tn]
		if !ok {
			return 0, fmt.Errorf("baselines: AVI has no table %q", tn)
		}
		est *= float64(sz)
	}
	for _, p := range q.Preds {
		tn := q.Vars[p.Var]
		hs := a.hist[tn]
		ai := a.attrIndex(tn, p.Attr)
		if ai < 0 || ai >= len(hs) {
			return 0, fmt.Errorf("baselines: AVI has no attribute %s.%s", tn, p.Attr)
		}
		accept, err := p.Accept(len(hs[ai]))
		if err != nil {
			return 0, fmt.Errorf("baselines: %w", err)
		}
		var sel float64
		for v := range accept {
			sel += hs[ai][v]
		}
		est *= sel
	}
	for _, j := range q.Joins {
		toTable := q.Vars[j.ToVar]
		sz := a.sizes[toTable]
		if sz == 0 {
			return 0, nil
		}
		est *= 1 / float64(sz)
	}
	// Non-key equality joins under attribute independence: the match
	// probability of L.A = R.B is Σ_v P(A=v)·P(B=v) over the shared codes.
	for _, j := range q.NonKeyJoins {
		lt, rt := q.Vars[j.LeftVar], q.Vars[j.RightVar]
		li := a.attrIndex(lt, j.LeftAttr)
		ri := a.attrIndex(rt, j.RightAttr)
		if li < 0 || ri < 0 {
			return 0, fmt.Errorf("baselines: AVI missing non-key join attribute %s.%s or %s.%s", lt, j.LeftAttr, rt, j.RightAttr)
		}
		lh, rh := a.hist[lt][li], a.hist[rt][ri]
		var match float64
		for v := 0; v < len(lh) && v < len(rh); v++ {
			match += lh[v] * rh[v]
		}
		est *= match
	}
	return est, nil
}

// attrIndex finds the attribute position; AVI keeps the schema implicitly
// via attribute order, so it carries a name index.
func (a *AVI) attrIndex(table, attr string) int {
	names, ok := a.attrNames[table]
	if !ok {
		return -1
	}
	for i, n := range names {
		if n == attr {
			return i
		}
	}
	return -1
}
