package baselines

import (
	"fmt"
	"math/rand"

	"prmsel/internal/dataset"
	"prmsel/internal/query"
)

// Sample estimates query sizes from a uniform random sample of a relation —
// either a single table, or the full foreign-key join of several tables
// (the paper's SAMPLE baseline for select-join queries). The sampled
// relation is defined by a skeleton: tuple variables plus keyjoin clauses
// where every variable is reachable from one base variable by following
// foreign keys, so each base row determines one row of the join.
//
// Queries estimated against a Sample must use the same join skeleton (same
// tables and keys); selection predicates may touch any attribute of any
// skeleton table.
type Sample struct {
	name string
	// tables in the skeleton, base first.
	tables []string
	// attrNames[t] aligns with rows' code layout.
	attrNames map[string][]string
	// attrCards[t] aligns with attrNames[t].
	attrCards map[string][]int
	// offsets[t] is the first column of table t's attributes in each row.
	offsets map[string]int
	// rows holds the sampled joined rows, flattened.
	rows    [][]int32
	baseLen int64
	// joinSet is the set of (fromTable, fk, toTable) clauses of the
	// skeleton.
	joinSet map[[3]string]bool
}

var _ Estimator = (*Sample)(nil)

// NewTableSample samples k rows of a single table.
func NewTableSample(t *dataset.Table, k int, rng *rand.Rand) *Sample {
	skeleton := query.New().Over("t", t.Name)
	s, err := NewJoinSample(singleTableDB(t), skeleton, "t", k, rng)
	if err != nil {
		panic(err) // cannot happen: the skeleton is trivially valid
	}
	return s
}

// singleTableDB wraps one table for the join-sample machinery. The table's
// foreign keys are ignored because the skeleton contains no joins.
func singleTableDB(t *dataset.Table) *dataset.Database {
	db := dataset.NewDatabase()
	stripped := dataset.NewTable(dataset.Schema{Name: t.Name, Attributes: t.Schema.Attributes})
	for r := 0; r < t.Len(); r++ {
		attrs := make([]int32, len(t.Attributes))
		for ai := range t.Attributes {
			attrs[ai] = t.Col(ai)[r]
		}
		stripped.MustAppendRow(attrs, nil)
	}
	if err := db.AddTable(stripped); err != nil {
		panic(err)
	}
	return db
}

// NewJoinSample samples k rows of the foreign-key join described by
// skeleton, whose tuple variable baseVar must determine every other
// variable by following foreign keys.
func NewJoinSample(db *dataset.Database, skeleton *query.Query, baseVar string, k int, rng *rand.Rand) (*Sample, error) {
	if err := skeleton.Validate(); err != nil {
		return nil, err
	}
	base := db.Table(skeleton.Vars[baseVar])
	if base == nil {
		return nil, fmt.Errorf("baselines: sample base table %q not found", skeleton.Vars[baseVar])
	}
	// Resolve the derivation order: start at baseVar, repeatedly follow
	// joins fromVar -> toVar where fromVar is resolved.
	type deriv struct {
		tv      string
		tbl     *dataset.Table
		fromTV  string
		fkCol   []int32 // on fromTV's table
		isFirst bool
	}
	resolved := map[string]bool{baseVar: true}
	plan := []deriv{{tv: baseVar, tbl: base, isFirst: true}}
	joinSet := make(map[[3]string]bool)
	pending := append([]query.Join(nil), skeleton.Joins...)
	for len(pending) > 0 {
		progressed := false
		rest := pending[:0]
		for _, j := range pending {
			fromTable := db.Table(skeleton.Vars[j.FromVar])
			toTable := db.Table(skeleton.Vars[j.ToVar])
			if fromTable == nil || toTable == nil {
				return nil, fmt.Errorf("baselines: sample skeleton references unknown table")
			}
			joinSet[[3]string{fromTable.Name, j.FK, toTable.Name}] = true
			if resolved[j.FromVar] && !resolved[j.ToVar] {
				col, err := fromTable.FKColByName(j.FK)
				if err != nil {
					return nil, err
				}
				plan = append(plan, deriv{tv: j.ToVar, tbl: toTable, fromTV: j.FromVar, fkCol: col})
				resolved[j.ToVar] = true
				progressed = true
			} else if !resolved[j.ToVar] {
				rest = append(rest, j)
			}
		}
		pending = append([]query.Join(nil), rest...)
		if len(pending) > 0 && !progressed {
			return nil, fmt.Errorf("baselines: sample skeleton not derivable from base %q", baseVar)
		}
	}
	if len(resolved) != len(skeleton.Vars) {
		return nil, fmt.Errorf("baselines: sample skeleton has variables unreachable from base %q", baseVar)
	}

	s := &Sample{
		name:      "SAMPLE",
		attrNames: make(map[string][]string),
		attrCards: make(map[string][]int),
		offsets:   make(map[string]int),
		baseLen:   int64(base.Len()),
		joinSet:   joinSet,
	}
	width := 0
	for _, d := range plan {
		if _, dup := s.offsets[d.tbl.Name]; dup {
			return nil, fmt.Errorf("baselines: sample skeleton uses table %s twice (self-joins unsupported)", d.tbl.Name)
		}
		s.tables = append(s.tables, d.tbl.Name)
		s.offsets[d.tbl.Name] = width
		names := make([]string, len(d.tbl.Attributes))
		cards := make([]int, len(d.tbl.Attributes))
		for ai, a := range d.tbl.Attributes {
			names[ai] = a.Name
			cards[ai] = a.Card()
		}
		s.attrNames[d.tbl.Name] = names
		s.attrCards[d.tbl.Name] = cards
		width += len(d.tbl.Attributes)
	}

	if k > base.Len() {
		k = base.Len()
	}
	perm := rng.Perm(base.Len())
	rowOf := make(map[string]int32, len(plan))
	for i := 0; i < k; i++ {
		rowOf[baseVar] = int32(perm[i])
		for _, d := range plan[1:] {
			rowOf[d.tv] = d.fkCol[rowOf[d.fromTV]]
		}
		row := make([]int32, width)
		for _, d := range plan {
			off := s.offsets[d.tbl.Name]
			r := rowOf[d.tv]
			for ai := range d.tbl.Attributes {
				row[off+ai] = d.tbl.Col(ai)[r]
			}
		}
		s.rows = append(s.rows, row)
	}
	return s, nil
}

// Name implements Estimator.
func (s *Sample) Name() string { return s.name }

// StorageBytes implements Estimator: one byte per stored code.
func (s *Sample) StorageBytes() int {
	if len(s.rows) == 0 {
		return 0
	}
	return len(s.rows) * len(s.rows[0]) * BytesPerCode
}

// EstimateCount implements Estimator: the fraction of sampled joined rows
// satisfying the predicates, scaled by the join's true size (the base
// table's size, since foreign keys are functional).
func (s *Sample) EstimateCount(q *query.Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if len(q.NonKeyJoins) > 0 {
		return 0, fmt.Errorf("baselines: sample estimator does not support non-key joins")
	}
	for _, j := range q.Joins {
		key := [3]string{q.Vars[j.FromVar], j.FK, q.Vars[j.ToVar]}
		if !s.joinSet[key] {
			return 0, fmt.Errorf("baselines: query join %s.%s->%s not in the sampled skeleton", key[0], key[1], key[2])
		}
	}
	// Resolve predicates to row columns.
	type pcheck struct {
		col    int
		accept map[int32]bool
	}
	checks := make([]pcheck, 0, len(q.Preds))
	for _, p := range q.Preds {
		tn := q.Vars[p.Var]
		off, ok := s.offsets[tn]
		if !ok {
			return 0, fmt.Errorf("baselines: sample does not cover table %q", tn)
		}
		ai := -1
		for i, n := range s.attrNames[tn] {
			if n == p.Attr {
				ai = i
				break
			}
		}
		if ai < 0 {
			return 0, fmt.Errorf("baselines: sample has no attribute %s.%s", tn, p.Attr)
		}
		accept, err := p.Accept(s.attrCards[tn][ai])
		if err != nil {
			return 0, fmt.Errorf("baselines: %w", err)
		}
		checks = append(checks, pcheck{col: off + ai, accept: accept})
	}
	if len(s.rows) == 0 {
		return 0, nil
	}
	matched := 0
	for _, row := range s.rows {
		ok := true
		for _, c := range checks {
			if !c.accept[row[c.col]] {
				ok = false
				break
			}
		}
		if ok {
			matched++
		}
	}
	return float64(matched) / float64(len(s.rows)) * float64(s.baseLen), nil
}
