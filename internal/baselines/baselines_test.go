package baselines

import (
	"math"
	"math/rand"
	"testing"

	"prmsel/internal/datagen"
	"prmsel/internal/dataset"
	"prmsel/internal/query"
)

func fig1DB(t *testing.T) *dataset.Database {
	t.Helper()
	return datagen.Fig1Example()
}

func TestAVIExactOnSingleAttribute(t *testing.T) {
	db := fig1DB(t)
	a := NewAVI(db)
	// P(Income = low) = 0.47 exactly; single-attribute selects are exact
	// under AVI.
	q := query.New().Over("p", "People").WhereEq("p", "Income", 0)
	est, err := a.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-470) > 1e-9 {
		t.Errorf("AVI single-attr = %v, want 470", est)
	}
}

func TestAVIIgnoresCorrelation(t *testing.T) {
	db := fig1DB(t)
	a := NewAVI(db)
	// Low-income home-owners: truth 270+135+18... no: E summed, I=l, H=t:
	// 30+15+2 = 47. AVI predicts 1000·0.47·0.344 = 161.68 — a large
	// overestimate, the paper's introduction example.
	q := query.New().Over("p", "People").WhereEq("p", "Income", 0).WhereEq("p", "HomeOwner", 1)
	truth, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 47 {
		t.Fatalf("truth = %d, want 47", truth)
	}
	est, err := a.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-161.68) > 0.01 {
		t.Errorf("AVI = %v, want 161.68", est)
	}
}

func TestAVIRangePredicate(t *testing.T) {
	db := fig1DB(t)
	a := NewAVI(db)
	q := query.New().Over("p", "People").Where("p", "Income", 0, 1, 2)
	est, err := a.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-1000) > 1e-9 {
		t.Errorf("full-range AVI = %v, want 1000", est)
	}
}

func TestAVIJoinUniformity(t *testing.T) {
	db := datagen.TB(0.05, 1)
	a := NewAVI(db)
	q := query.New().
		Over("c", "Contact").Over("p", "Patient").
		KeyJoin("c", "Patient", "p")
	est, err := a.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(db.Table("Contact").Len())
	if math.Abs(est-want)/want > 1e-9 {
		t.Errorf("AVI join size = %v, want %v", est, want)
	}
}

func TestAVIErrors(t *testing.T) {
	db := fig1DB(t)
	a := NewAVI(db)
	if _, err := a.EstimateCount(query.New().Over("p", "Nope")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := a.EstimateCount(query.New().Over("p", "People").WhereEq("p", "Nope", 0)); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := a.EstimateCount(query.New().Over("p", "People").WhereEq("p", "Income", 9)); err == nil {
		t.Error("out-of-domain value accepted")
	}
}

func TestAVIStorage(t *testing.T) {
	db := fig1DB(t)
	a := NewAVI(db)
	// 3 + 3 + 2 = 8 counts at 4 bytes.
	if a.StorageBytes() != 32 {
		t.Errorf("AVI storage = %d, want 32", a.StorageBytes())
	}
	if a.Name() != "AVI" {
		t.Error("name")
	}
}

func TestSampleFullTableIsExact(t *testing.T) {
	db := fig1DB(t)
	tbl := db.Table("People")
	s := NewTableSample(tbl, tbl.Len(), rand.New(rand.NewSource(1)))
	q := query.New().Over("p", "People").WhereEq("p", "Income", 0).WhereEq("p", "HomeOwner", 1)
	est, err := s.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if est != 47 {
		t.Errorf("full-table sample = %v, want exact 47", est)
	}
}

func TestSampleApproximates(t *testing.T) {
	db := fig1DB(t)
	tbl := db.Table("People")
	s := NewTableSample(tbl, 300, rand.New(rand.NewSource(2)))
	q := query.New().Over("p", "People").WhereEq("p", "Education", 0)
	est, err := s.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-500) > 120 {
		t.Errorf("sampled estimate %v too far from 500", est)
	}
	if s.StorageBytes() != 300*3*BytesPerCode {
		t.Errorf("sample storage = %d, want %d", s.StorageBytes(), 300*3)
	}
}

func TestJoinSample(t *testing.T) {
	db := datagen.TB(0.05, 3)
	skeleton := query.New().
		Over("c", "Contact").Over("p", "Patient").Over("s", "Strain").
		KeyJoin("c", "Patient", "p").
		KeyJoin("p", "Strain", "s")
	nContact := db.Table("Contact").Len()
	js, err := NewJoinSample(db, skeleton, "c", nContact, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// With the full join sampled, estimates are exact.
	q := skeleton.Clone().
		WhereEq("c", "Contype", 3).
		WhereEq("p", "USBorn", 1)
	truth, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := js.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-float64(truth)) > 1e-9 {
		t.Errorf("full join sample = %v, want %d", est, truth)
	}
}

func TestJoinSampleRejectsForeignJoin(t *testing.T) {
	db := datagen.TB(0.05, 3)
	skeleton := query.New().
		Over("c", "Contact").Over("p", "Patient").
		KeyJoin("c", "Patient", "p")
	js, err := NewJoinSample(db, skeleton, "c", 100, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	q := query.New().
		Over("p", "Patient").Over("s", "Strain").
		KeyJoin("p", "Strain", "s")
	if _, err := js.EstimateCount(q); err == nil {
		t.Error("join outside the sampled skeleton accepted")
	}
}

func TestJoinSampleUnderivableSkeleton(t *testing.T) {
	db := datagen.TB(0.05, 3)
	skeleton := query.New().
		Over("c", "Contact").Over("p", "Patient").
		KeyJoin("c", "Patient", "p")
	// Base "p" cannot derive "c" (the key points the other way).
	if _, err := NewJoinSample(db, skeleton, "p", 100, rand.New(rand.NewSource(6))); err == nil {
		t.Error("underivable skeleton accepted")
	}
}

func TestMHistExactWithFullBudget(t *testing.T) {
	db := fig1DB(t)
	tbl := db.Table("People")
	// 18 cells; allow many buckets so every non-uniform region splits out.
	h, err := NewMHist(tbl, []string{"Education", "Income", "HomeOwner"}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	q := query.New().Over("p", "People").
		WhereEq("p", "Education", 0).
		WhereEq("p", "Income", 0).
		WhereEq("p", "HomeOwner", 0)
	est, err := h.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-270) > 1 {
		t.Errorf("MHIST exact-budget estimate = %v, want 270", est)
	}
}

func TestMHistDegradesGracefully(t *testing.T) {
	db := datagen.Census(5000, 5)
	tbl := db.Table("Census")
	attrs := []string{"Age", "Income"}
	tight, err := NewMHist(tbl, attrs, 200)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := NewMHist(tbl, attrs, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if tight.StorageBytes() > 200 || loose.StorageBytes() > 4000 {
		t.Fatalf("budgets exceeded: %d, %d", tight.StorageBytes(), loose.StorageBytes())
	}
	// Average error over the full suite must not get worse with budget.
	var errTight, errLoose float64
	n := 0
	for age := int32(0); age < 18; age++ {
		for inc := int32(0); inc < 42; inc++ {
			q := query.New().Over("c", "Census").
				WhereEq("c", "Age", age).WhereEq("c", "Income", inc)
			truth, err := db.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			e1, err := tight.EstimateCount(q)
			if err != nil {
				t.Fatal(err)
			}
			e2, err := loose.EstimateCount(q)
			if err != nil {
				t.Fatal(err)
			}
			errTight += math.Abs(e1-float64(truth)) / math.Max(float64(truth), 1)
			errLoose += math.Abs(e2-float64(truth)) / math.Max(float64(truth), 1)
			n++
		}
	}
	if errLoose > errTight*1.05 {
		t.Errorf("more budget made MHIST worse: tight %.2f, loose %.2f", errTight/float64(n), errLoose/float64(n))
	}
}

func TestMHistRangeAndPartialQueries(t *testing.T) {
	db := fig1DB(t)
	tbl := db.Table("People")
	h, err := NewMHist(tbl, []string{"Education", "Income", "HomeOwner"}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Query on a subset of histogram dims: P(Income=low) = 470.
	q := query.New().Over("p", "People").WhereEq("p", "Income", 0)
	est, err := h.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-470) > 1 {
		t.Errorf("partial query = %v, want 470", est)
	}
	// Range query.
	q = query.New().Over("p", "People").Where("p", "Income", 1, 2)
	est, err = h.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-530) > 1 {
		t.Errorf("range query = %v, want 530", est)
	}
}

func TestMHistErrors(t *testing.T) {
	db := fig1DB(t)
	tbl := db.Table("People")
	if _, err := NewMHist(tbl, []string{"Nope"}, 100); err == nil {
		t.Error("unknown attribute accepted")
	}
	h, err := NewMHist(tbl, []string{"Income"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.EstimateCount(query.New().Over("p", "People").WhereEq("p", "Education", 0)); err == nil {
		t.Error("uncovered attribute accepted")
	}
	join := query.New().Over("a", "People").Over("b", "People").KeyJoin("a", "X", "b")
	if _, err := h.EstimateCount(join); err == nil {
		t.Error("join query accepted")
	}
}

func TestMHistBucketsTileTheSpace(t *testing.T) {
	db := datagen.Census(3000, 9)
	tbl := db.Table("Census")
	h, err := NewMHist(tbl, []string{"Age", "Education", "Income"}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of bucket counts must equal the table size, and the full-range
	// query must return it.
	var sum float64
	for i := range h.buckets {
		sum += h.buckets[i].count
	}
	if math.Abs(sum-3000) > 1e-6 {
		t.Errorf("bucket counts sum to %v, want 3000", sum)
	}
	q := query.New().Over("c", "Census")
	est, err := h.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-3000) > 1e-6 {
		t.Errorf("unconstrained query = %v, want 3000", est)
	}
}
