// Package baselines implements the selectivity estimators the paper
// compares against: AVI (attribute value independence), MHIST
// (multidimensional V-Optimal(V,A) histograms), and SAMPLE (uniform row
// samples, over a single table or over a full foreign-key join). The BN+UJ
// baseline is core.Learn with Config.UniformJoin set.
package baselines

import "prmsel/internal/query"

// Estimator is the common contract all selectivity estimators satisfy,
// including the PRM itself (via an adapter in the public package).
type Estimator interface {
	// Name identifies the estimator in experiment output.
	Name() string
	// EstimateCount estimates the result size of q.
	EstimateCount(q *query.Query) (float64, error)
	// StorageBytes reports the storage consumed, under the shared
	// accounting (4-byte counts/parameters, 1-byte codes).
	StorageBytes() int
}

// BytesPerCount is the storage cost of one stored frequency/count.
const BytesPerCount = 4

// BytesPerCode is the storage cost of one stored attribute value code
// (domains are small, so one byte suffices).
const BytesPerCode = 1
