// Command prmquery estimates ad-hoc queries against a learned model, in
// one shot or as a small REPL, and compares each estimate with the exact
// count:
//
//	prmquery -dataset tb -q "FROM Contact c, Patient p WHERE c.Patient = p.PK AND p.Age BETWEEN age6 AND age7"
//	prmquery -dataset tb            # interactive: one query per line
//
// Query syntax is the internal/queryparse dialect: clauses alias.Attr =
// label, != label, IN (…), NOT IN (…), BETWEEN lo AND hi, keyjoins
// alias.FK = other.PK, and non-key joins alias.A = other.B. Use #n for a
// raw value code.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"prmsel"
	"prmsel/internal/cliutil"
	"prmsel/internal/queryparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prmquery: ")
	name := flag.String("dataset", "census", cliutil.DatasetHelp)
	csvDir := flag.String("csv", "", "directory of <table>.csv files (overrides -dataset)")
	rows := flag.Int("rows", 40000, "census rows")
	scale := flag.Float64("scale", 1.0, "TB/FIN/Shop scale")
	seed := flag.Int64("seed", 1, "generator seed")
	budget := flag.Int("budget", 4400, "model storage budget in bytes")
	queryText := flag.String("q", "", "query to estimate (empty = read queries from stdin)")
	noExact := flag.Bool("no-exact", false, "skip the exact count (fast, estimate only)")
	flag.Parse()

	db, err := cliutil.LoadDB(*csvDir, *name, *rows, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	model, err := prmsel.Build(db, prmsel.Config{BudgetBytes: *budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "model: %d bytes, built in %v\n", model.StorageBytes(), time.Since(start).Round(time.Millisecond))

	run := func(text string) {
		q, err := queryparse.Parse(db, text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		estStart := time.Now()
		est, err := model.EstimateCount(q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		estTime := time.Since(estStart)
		fmt.Printf("query:    %s\n", q)
		fmt.Printf("estimate: %.1f   (%v)\n", est, estTime.Round(time.Microsecond))
		if !*noExact {
			exactStart := time.Now()
			truth, err := db.Count(q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
			errPct := 100 * abs(est-float64(truth)) / maxf(float64(truth), 1)
			fmt.Printf("exact:    %d   (%v, adjusted relative error %.1f%%)\n",
				truth, time.Since(exactStart).Round(time.Microsecond), errPct)
		}
		if ex, err := model.Explain(q); err == nil && len(ex.TupleVars) > len(q.Vars) {
			closure := make([]string, 0, len(ex.TupleVars))
			for tv, table := range ex.TupleVars {
				if _, own := q.Vars[tv]; !own {
					closure = append(closure, table)
				}
			}
			sort.Strings(closure)
			fmt.Printf("closure:  upward closure added %s\n", strings.Join(closure, ", "))
		}
	}

	if *queryText != "" {
		run(*queryText)
		return
	}
	fmt.Fprintln(os.Stderr, "enter one query per line (ctrl-d to exit):")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		run(line)
		fmt.Println()
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
