// Command prmquery estimates ad-hoc queries against a learned model, in
// one shot or as a small REPL, and compares each estimate with the exact
// count:
//
//	prmquery -dataset tb -q "FROM Contact c, Patient p WHERE c.Patient = p.PK AND p.Age BETWEEN age6 AND age7"
//	prmquery -dataset tb            # interactive: one query per line
//
// Query syntax is the internal/queryparse dialect: clauses alias.Attr =
// label, != label, IN (…), NOT IN (…), BETWEEN lo AND hi, keyjoins
// alias.FK = other.PK, and non-key joins alias.A = other.B. Use #n for a
// raw value code.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"prmsel"
	"prmsel/internal/bayesnet"
	"prmsel/internal/cliutil"
	"prmsel/internal/httpretry"
	"prmsel/internal/obs"
	"prmsel/internal/queryparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prmquery: ")
	name := flag.String("dataset", "census", cliutil.DatasetHelp)
	csvDir := flag.String("csv", "", "directory of <table>.csv files (overrides -dataset)")
	rows := flag.Int("rows", 40000, "census rows")
	scale := flag.Float64("scale", 1.0, "TB/FIN/Shop scale")
	seed := flag.Int64("seed", 1, "generator seed")
	budget := flag.Int("budget", 4400, "model storage budget in bytes")
	queryText := flag.String("q", "", "query to estimate (empty = read queries from stdin)")
	noExact := flag.Bool("no-exact", false, "skip the exact count (fast, estimate only)")
	server := flag.String("server", "", "prmserved base URL (e.g. http://localhost:8080); queries go to the service instead of a local model")
	modelName := flag.String("model", "", "model name on the server (with -server; empty = the server's only model)")
	trace := flag.Bool("trace", false, "print each estimate's span tree (parse/closure/inference timings)")
	maxCells := flag.Int("max-cells", 0, "elimination budget in factor cells; over-budget queries degrade to likelihood-weighting sampling (0 = unlimited)")
	approxSamples := flag.Int("approx-samples", 4096, "likelihood-weighting samples when degraded below exact")
	flag.Parse()

	if *server != "" {
		runAll(*queryText, func(text string) {
			remoteRun(*server, *modelName, text, !*noExact, *trace)
		})
		return
	}

	db, err := cliutil.LoadDB(*csvDir, *name, *rows, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	model, err := prmsel.Build(db, prmsel.Config{BudgetBytes: *budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "model: %d bytes, built in %v\n", model.StorageBytes(), time.Since(start).Round(time.Millisecond))

	run := func(text string) {
		q, err := queryparse.Parse(db, text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		estStart := time.Now()
		ctx := context.Background()
		var tr *obs.Tracer
		if *trace {
			tr = obs.NewTracer("prmquery")
			ctx = obs.NewContext(ctx, tr.Root())
		}
		var est float64
		var tier, tierReason string
		if *maxCells > 0 {
			// Budgeted estimation goes through the degradation chain, so an
			// over-budget query reports a sampled answer and its tier
			// instead of failing.
			res, err := model.EstimateCountFallback(ctx, q, prmsel.EstimateOptions{
				Budget:        bayesnet.Budget{MaxCells: *maxCells},
				ApproxSamples: *approxSamples,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
			est, tier, tierReason = res.Estimate, string(res.Tier), res.Reason
		} else {
			var err error
			est, err = model.EstimateCountCtx(ctx, q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
		}
		estTime := time.Since(estStart)
		fmt.Printf("query:    %s\n", q)
		fmt.Printf("estimate: %.1f   (%v)\n", est, estTime.Round(time.Microsecond))
		if tier != "" && tier != "exact" {
			fmt.Printf("tier:     %s   (%s)\n", tier, tierReason)
		}
		if !*noExact {
			exactStart := time.Now()
			truth, err := db.Count(q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
			errPct := 100 * abs(est-float64(truth)) / maxf(float64(truth), 1)
			fmt.Printf("exact:    %d   (%v, adjusted relative error %.1f%%)\n",
				truth, time.Since(exactStart).Round(time.Microsecond), errPct)
		}
		if ex, err := model.Explain(q); err == nil && len(ex.TupleVars) > len(q.Vars) {
			closure := make([]string, 0, len(ex.TupleVars))
			for tv, table := range ex.TupleVars {
				if _, own := q.Vars[tv]; !own {
					closure = append(closure, table)
				}
			}
			sort.Strings(closure)
			fmt.Printf("closure:  upward closure added %s\n", strings.Join(closure, ", "))
		}
		if tr != nil {
			tr.End()
			fmt.Printf("trace:\n%s", tr.Root().Tree())
		}
	}

	runAll(*queryText, run)
}

// runAll runs one query, or the stdin REPL when text is empty.
func runAll(text string, run func(string)) {
	if text != "" {
		run(text)
		return
	}
	fmt.Fprintln(os.Stderr, "enter one query per line (ctrl-d to exit):")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		run(line)
		fmt.Println()
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
}

// remoteRun sends one query to a running prmserved and prints the reply in
// the same format as the local path, plus the per-estimator breakdown.
// With trace, the server-side span tree comes back in the response and is
// printed in the same format as a local -trace run.
func remoteRun(base, model, text string, exact, trace bool) {
	body, err := json.Marshal(map[string]any{
		"model": model,
		"query": text,
		"exact": exact,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	url := strings.TrimSuffix(base, "/") + "/v1/estimate"
	if trace {
		url += "?trace=1"
	}
	// The shared retrying client: connection errors and protective
	// 429/503 answers retry with jittered backoff, honoring the server's
	// own Retry-After — a shedding server says how long to stay away.
	client := httpretry.New(httpretry.Config{})
	httpResp, err := client.Post(context.Background(), url, "application/json", body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	defer httpResp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return
	}
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			fmt.Fprintf(os.Stderr, "error: %s\n", e.Error)
			return
		}
		fmt.Fprintf(os.Stderr, "error: server returned %s\n", httpResp.Status)
		return
	}
	var resp struct {
		Model      string  `json:"model"`
		Generation int64   `json:"generation"`
		Query      string  `json:"query"`
		Estimate   float64 `json:"estimate"`
		Tier       string  `json:"tier"`
		TierReason string  `json:"tier_reason"`
		Breakdown  []struct {
			Estimator string  `json:"estimator"`
			Estimate  float64 `json:"estimate"`
			Micros    int64   `json:"micros"`
			Error     string  `json:"error"`
		} `json:"breakdown"`
		Cache struct {
			Hit     bool `json:"hit"`
			Deduped bool `json:"deduped"`
		} `json:"cache"`
		LatencyMicros int64 `json:"latency_micros"`
		Exact         *struct {
			Count  int64   `json:"count"`
			Micros int64   `json:"micros"`
			QError float64 `json:"qerror"`
		} `json:"exact"`
		Trace *obs.SpanDump `json:"trace"`
	}
	if err := json.Unmarshal(payload, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "error: bad server response: %v\n", err)
		return
	}
	source := fmt.Sprintf("%v", time.Duration(resp.LatencyMicros)*time.Microsecond)
	if resp.Cache.Hit {
		source += ", cached"
	} else if resp.Cache.Deduped {
		source += ", deduped"
	}
	fmt.Printf("query:    %s\n", resp.Query)
	fmt.Printf("estimate: %.1f   (%s, model %s gen %d)\n", resp.Estimate, source, resp.Model, resp.Generation)
	if resp.Tier != "" && resp.Tier != "exact" {
		fmt.Printf("tier:     %s   (%s)\n", resp.Tier, resp.TierReason)
	}
	if resp.Exact != nil {
		errPct := 100 * abs(resp.Estimate-float64(resp.Exact.Count)) / maxf(float64(resp.Exact.Count), 1)
		fmt.Printf("exact:    %d   (%v, adjusted relative error %.1f%%)\n",
			resp.Exact.Count, time.Duration(resp.Exact.Micros)*time.Microsecond, errPct)
	}
	for _, b := range resp.Breakdown {
		if b.Error != "" {
			fmt.Printf("  %-8s error: %s\n", b.Estimator, b.Error)
			continue
		}
		fmt.Printf("  %-8s %.1f   (%v)\n", b.Estimator, b.Estimate, time.Duration(b.Micros)*time.Microsecond)
	}
	if resp.Trace != nil {
		fmt.Printf("trace:\n%s", resp.Trace.Tree())
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
