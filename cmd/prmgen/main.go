// Command prmgen emits the synthetic evaluation datasets as CSV files, in
// the layout prmsel.ReadDatabaseCSV accepts (one file per table).
//
//	prmgen -dataset tb -scale 1.0 -out ./data/tb
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"prmsel/internal/datagen"
	"prmsel/internal/dataset"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prmgen: ")
	name := flag.String("dataset", "census", "dataset: census, tb, fin, shop or fig1")
	rows := flag.Int("rows", 150000, "census rows")
	scale := flag.Float64("scale", 1.0, "TB/FIN scale (1.0 = paper sizes)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var db *dataset.Database
	switch *name {
	case "census":
		db = datagen.Census(*rows, *seed)
	case "tb":
		db = datagen.TB(*scale, *seed)
	case "fin":
		db = datagen.FIN(*scale, *seed)
	case "shop":
		db = datagen.Shop(*scale, *seed)
	case "fig1":
		db = datagen.Fig1Example()
	default:
		log.Fatalf("unknown dataset %q", *name)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, tn := range db.TableNames() {
		path := filepath.Join(*out, tn+".csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := dataset.WriteCSV(f, db.Table(tn)); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, db.Table(tn).Len())
	}
}
