// Command prmserved runs the online selectivity-estimation service: it
// learns one model per requested dataset, then serves concurrent estimate
// requests over an HTTP JSON API with an inference cache, background
// rebuilds with atomic hot-swap, and metrics at /debug/vars.
//
//	prmserved -addr :8080 -datasets census,tb
//	curl -s localhost:8080/v1/estimate -d '{"model":"census","query":"FROM Census c WHERE c.Sex = sex0"}'
//
// Query syntax is the internal/queryparse dialect (see cmd/prmquery).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"prmsel/internal/cliutil"
	"prmsel/internal/serve"
	"prmsel/internal/store"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("prmserved: ")
	addr := flag.String("addr", ":8080", "listen address")
	datasets := flag.String("datasets", "census", "comma-separated models to serve: "+cliutil.DatasetHelp)
	csvDir := flag.String("csv", "", "directory of <table>.csv files, served as model \"csv\" (in addition to -datasets)")
	rows := flag.Int("rows", 40000, "census rows")
	scale := flag.Float64("scale", 1.0, "TB/FIN/Shop scale")
	seed := flag.Int64("seed", 1, "generator seed")
	budget := flag.Int("budget", 4400, "model storage budget in bytes")
	cacheCap := flag.Int("cache", 4096, "inference cache capacity (entries)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	requestTimeout := flag.Duration("request-timeout", 0, "hard per-request context deadline, mapped to a structured 503 deadline_exceeded (0 = off; -timeout still bounds handler time)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "max time to read a full request, body included")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "max time to write a full response")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "max keep-alive idle time per connection")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	exactEvery := flag.Int("exact-every", 0, "run every Nth estimate through the exact executor for q-error metrics (0 = off)")
	logJSON := flag.Bool("log-json", false, "emit request logs as JSON (default: logfmt-style text)")
	maxCells := flag.Int("max-cells", 0, "elimination budget in factor cells; over-budget queries degrade to sampling (0 = unlimited)")
	approxSamples := flag.Int("approx-samples", 4096, "likelihood-weighting samples for the degraded tier")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission-control weight capacity (0 = 8×GOMAXPROCS, negative = off)")
	maxQueued := flag.Int("max-queued", 0, "admission queue length before 429 (0 = 4×capacity)")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "max wait for an inference slot before 503")
	rebuildRetries := flag.Int("rebuild-retries", 5, "max build attempts per rebuild cycle")
	storeDir := flag.String("store-dir", "", "durable model store directory: snapshots persist across restarts and recovery serves them immediately on startup (empty = in-memory only)")
	keepGenerations := flag.Int("keep-generations", 3, "snapshot generations kept per model in the store")
	driftThreshold := flag.Float64("drift-threshold", 0, "p90 observed q-error (from /v1/feedback) above which a model reports drifted (0 = watchdog off)")
	driftWindow := flag.Int("drift-window", 64, "rolling window size for the accuracy watchdog")
	rebuildOnDrift := flag.Bool("rebuild-on-drift", false, "trigger an early background rebuild when a model drifts")
	ingestOn := flag.Bool("ingest", false, "enable the WAL-backed streaming write path (POST /v1/ingest); requires -store-dir")
	refitRows := flag.Int64("refit-rows", 1024, "pending rows that trigger an incremental refit (negative = row trigger off)")
	refitInterval := flag.Duration("refit-interval", 0, "refit pending rows at least this often (0 = off)")
	maxPending := flag.Int64("max-pending", 65536, "pending-row backlog before ingest returns 429")
	journalSize := flag.Int("journal-size", 0, "request journal ring capacity in events (0 = default 1024, negative = journal off)")
	journalSample := flag.Int("journal-sample", 0, "journal 1 in N ordinary successes; errors, degraded, and slow requests are always kept (0 = default)")
	slowThreshold := flag.Duration("slow-threshold", 0, "latency above which a request is journaled as slow (0 = default: the SLO latency threshold)")
	sloLatency := flag.Duration("slo-latency", 0, "latency SLO threshold for estimate requests (0 = default 100ms)")
	sloLatencyTarget := flag.Float64("slo-latency-target", 0, "fraction of estimate requests that must meet -slo-latency (0 = default 0.999)")
	sloQErrorMax := flag.Float64("slo-qerror-max", 0, "q-error SLO threshold for feedback and exact-checked estimates (0 = default 16)")
	drainGrace := flag.Duration("drain-grace", 0, "pause between flipping /readyz to 503 and closing the listener, so upstreams stop routing before connections start failing (0 = immediate)")
	brownout := flag.Bool("brownout", true, "enable the adaptive brownout controller and circuit breakers")
	brownoutTick := flag.Duration("brownout-tick", 0, "brownout controller sampling period (0 = default 1s)")
	memSoftLimit := flag.Int64("mem-soft-limit", 0, "heap bytes feeding the brownout memory-pressure signal (0 = signal off)")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "sample 1 in N mutex contention events for /debug/pprof/mutex (0 = off); turn on to verify the read path takes no locks")
	blockRate := flag.Int("block-profile-rate", 0, "sample blocking events at this rate in ns for /debug/pprof/block (0 = off)")
	flag.Parse()

	if *ingestOn && *storeDir == "" {
		log.Fatal("-ingest requires -store-dir: acknowledged rows must be durable")
	}
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
		log.Printf("mutex profiling on: 1 in %d contention events → /debug/pprof/mutex", *mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
		log.Printf("block profiling on: %dns sampling rate → /debug/pprof/block", *blockRate)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	reg := serve.NewRegistry()
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *keepGenerations)
		if err != nil {
			log.Fatal(err)
		}
		reg.UseStore(st)
		log.Printf("durable model store at %s (keeping %d generations per model)", st.Dir(), *keepGenerations)
	}
	drift := serve.DriftPolicy{Window: *driftWindow, Threshold: *driftThreshold}
	ingestPol := serve.IngestPolicy{
		Enabled:       *ingestOn,
		RefitRows:     *refitRows,
		RefitInterval: *refitInterval,
		MaxPending:    *maxPending,
	}
	add := func(name string, spec serve.BuildSpec) {
		start := time.Now()
		m, err := reg.Add(name, spec)
		if err != nil {
			log.Fatal(err)
		}
		snap := m.Current()
		var storage int
		for _, e := range snap.Estimators {
			storage += e.StorageBytes()
		}
		state := "built"
		if h := m.Health(); h.Recovered {
			state = "recovered"
			if h.Ingest != nil && h.Ingest.PendingRows > 0 {
				state = fmt.Sprintf("recovered (+%d rows replayed from WAL)", h.Ingest.PendingRows)
			}
		}
		log.Printf("model %s ready: %d estimators, %d bytes, %s in %v",
			m.Name, len(snap.Estimators), storage, state, time.Since(start).Round(time.Millisecond))
	}
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		add(name, serve.BuildSpec{
			Dataset:     name,
			Rows:        *rows,
			Scale:       *scale,
			Seed:        *seed,
			BudgetBytes: *budget,
			Retry:       serve.RetryPolicy{MaxAttempts: *rebuildRetries},
			Drift:       drift,
			Ingest:      ingestPol,
		})
	}
	if *csvDir != "" {
		add("csv", serve.BuildSpec{
			CSVDir:      *csvDir,
			Seed:        *seed,
			BudgetBytes: *budget,
			Retry:       serve.RetryPolicy{MaxAttempts: *rebuildRetries},
			Drift:       drift,
			Ingest:      ingestPol,
		})
	}
	if len(reg.Names()) == 0 {
		log.Fatal("no models to serve (set -datasets or -csv)")
	}

	srv := serve.NewServer(serve.Config{
		Registry:           reg,
		CacheCapacity:      *cacheCap,
		RequestTimeout:     *timeout,
		MaxBodyBytes:       *maxBody,
		ExactEvery:         *exactEvery,
		MaxCells:           *maxCells,
		ApproxSamples:      *approxSamples,
		MaxConcurrent:      *maxConcurrent,
		MaxQueued:          *maxQueued,
		QueueTimeout:       *queueTimeout,
		RebuildOnDrift:     *rebuildOnDrift,
		Logger:             logger,
		JournalSize:        *journalSize,
		JournalSampleEvery: *journalSample,
		DisableJournal:     *journalSize < 0,
		SlowThreshold:      *slowThreshold,
		SLOLatency:         *sloLatency,
		SLOLatencyTarget:   *sloLatencyTarget,
		SLOQErrorMax:       *sloQErrorMax,
		DisableBrownout:    !*brownout,
		BrownoutTick:       *brownoutTick,
		MemSoftLimit:       *memSoftLimit,
	})
	srv.Metrics().Publish()

	// Full server-side timeouts, not just the header read: a client that
	// trickles a body or never drains a response must not pin a
	// connection (and its admission slot) forever.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           requestDeadline(*requestTimeout, srv.Handler()),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("serving %s on %s", strings.Join(reg.Names(), ", "), *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown, in dependency order: flip /readyz to not-ready
	// first and give upstreams (the cluster gate, load balancers) a grace
	// period to notice and stop routing here, then stop accepting and
	// drain in-flight HTTP requests (which empties the admission queue —
	// every queued request either finishes or times out under the server
	// deadline), then stop the rebuild loops and wait for any pending
	// snapshot flush to the durable store, so a SIGTERM never loses a
	// just-built generation.
	srv.StartDrain()
	if *drainGrace > 0 {
		log.Printf("shutting down: not-ready on /readyz, waiting %v for upstreams", *drainGrace)
		time.Sleep(*drainGrace)
	}
	log.Print("shutting down: draining requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "prmserved: shutdown: %v\n", err)
	}
	srv.Close() // stop the brownout controller before model teardown
	log.Print("shutting down: stopping rebuilds and flushing snapshots")
	if err := reg.Close(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "prmserved: shutdown: %v\n", err)
	}
	log.Print("shutdown complete")
}

// requestDeadline wraps the whole handler tree in a per-request context
// deadline. The serve layer already cancels inference when the context
// ends; this middleware additionally guarantees the client gets a
// structured answer — if the deadline fired and nothing was written yet,
// it answers 503 deadline_exceeded itself (with Retry-After, so the
// refusal reads as pushback, not an outage).
func requestDeadline(d time.Duration, next http.Handler) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		dw := &deadlineWriter{ResponseWriter: w}
		next.ServeHTTP(dw, r.WithContext(ctx))
		if !dw.wrote && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\"error\":\"deadline_exceeded\",\"timeout\":%q}\n", d)
		}
	})
}

// deadlineWriter tracks whether the inner handler wrote anything, so the
// deadline middleware never stacks a second response on a real one.
type deadlineWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *deadlineWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *deadlineWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}
