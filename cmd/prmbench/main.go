// Command prmbench regenerates the paper's evaluation figures (Section 5,
// Figures 4–7) on the synthetic datasets. Each figure is printed as a text
// table: one row per x value, one column per estimator.
//
//	prmbench -fig 4a                 # one figure
//	prmbench -fig all -rows 150000   # the whole evaluation at paper scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"prmsel/internal/datagen"
	"prmsel/internal/dataset"
	"prmsel/internal/eval"
	"prmsel/internal/obs"
	"prmsel/internal/query"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prmbench: ")
	figFlag := flag.String("fig", "all", "figure to regenerate: 4a,4b,4c,5a,5b,5c,6a,6b,6c,7a,7b,7c, ab-scoring, ab-topk, or all")
	csvOut := flag.Bool("csv", false, "emit figures as CSV instead of aligned text")
	rows := flag.Int("rows", 40000, "census rows (the paper used ≈150000)")
	scale := flag.Float64("scale", 1.0, "TB/FIN scale (1.0 = paper sizes)")
	maxq := flag.Int("maxq", 2000, "per-suite query cap (0 = every instantiation)")
	seed := flag.Int64("seed", 1, "generator and estimator seed")
	trace := flag.Bool("trace", false, "print a span tree per figure (structure-search progress and timings) to stderr")
	perf := flag.Bool("perf", false, "run the estimation-path performance suite (compiled vs uncompiled plans, batch vs sequential) instead of the accuracy figures")
	jsonOut := flag.String("json", "", "with -perf: also write the machine-readable report to this path (e.g. BENCH_PR5.json)")
	iters := flag.Int("iters", 400, "with -perf: timed estimates per workload")
	flag.Parse()

	if *perf {
		if err := runPerf(*jsonOut, *iters, *rows, *scale, *seed); err != nil {
			log.Fatalf("perf: %v", err)
		}
		return
	}

	opt := eval.Options{MaxQueries: *maxq, Seed: *seed}
	figs := strings.Split(*figFlag, ",")
	if *figFlag == "all" {
		figs = []string{"4a", "4b", "4c", "5a", "5b", "5c", "6a", "6b", "6c", "7a", "7b", "7c"}
	}

	var censusDB, tbDB, finDB *dataset.Database
	census := func() *dataset.Database {
		if censusDB == nil {
			log.Printf("generating census (%d rows)", *rows)
			censusDB = datagen.Census(*rows, *seed)
		}
		return censusDB
	}
	tb := func() *dataset.Database {
		if tbDB == nil {
			log.Printf("generating TB (scale %.2f)", *scale)
			tbDB = datagen.TB(*scale, *seed)
		}
		return tbDB
	}
	fin := func() *dataset.Database {
		if finDB == nil {
			log.Printf("generating FIN (scale %.2f)", *scale)
			finDB = datagen.FIN(*scale, *seed)
		}
		return finDB
	}

	for _, id := range figs {
		figOpt := opt
		var tr *obs.Tracer
		if *trace {
			tr = obs.NewTracer("fig-" + id)
			figOpt.Trace = tr.Root()
		}
		fig, err := runFigure(id, census, tb, fin, figOpt)
		if err != nil {
			log.Fatalf("figure %s: %v", id, err)
		}
		if tr != nil {
			tr.End()
			fmt.Fprint(os.Stderr, tr.Root().Tree())
		}
		if fig != nil {
			render := fig.Render
			if *csvOut {
				render = fig.RenderCSV
			}
			if err := render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
	}
}

// runFigure dispatches one figure id. Fig 5c prints its scatter itself and
// returns a nil figure.
func runFigure(id string, census, tb, fin func() *dataset.Database, opt eval.Options) (*eval.Figure, error) {
	switch id {
	case "4a":
		return eval.Fig4(census(), "4a", []string{"Age", "Income"},
			[]int{200, 400, 600, 800, 1000, 1200}, opt)
	case "4b":
		return eval.Fig4(census(), "4b", []string{"Age", "HoursPerWeek", "Income"},
			[]int{500, 1500, 2500, 3500}, opt)
	case "4c":
		return eval.Fig4(census(), "4c", []string{"Age", "Education", "HoursPerWeek", "Income"},
			[]int{500, 1500, 2500, 3500, 4500, 5500}, opt)
	case "5a":
		return eval.Fig5(census(), "5a", []string{"WorkerClass", "Education", "MaritalStatus"},
			[]int{1500, 2500, 3500, 4500}, opt)
	case "5b":
		return eval.Fig5(census(), "5b", []string{"Income", "Industry", "Age", "EmployType"},
			[]int{1500, 3500, 5500, 7500, 9500}, opt)
	case "5c":
		points, err := eval.Fig5c(census(), []string{"Income", "Industry", "Age"}, 9300, opt)
		if err != nil {
			return nil, err
		}
		printScatter(points)
		return nil, nil
	case "6a":
		w := eval.TBWorkload(tb())
		targets := []query.Target{
			{Var: "c", Attr: "Contype"},
			{Var: "p", Attr: "Age"},
			{Var: "s", Attr: "DrugResistant"},
		}
		return eval.Fig6a(w, targets, []int{300, 1300, 2300, 3300, 4300}, opt)
	case "6b":
		w := eval.TBWorkload(tb())
		suites := [][]query.Target{
			{{Var: "c", Attr: "Contype"}, {Var: "p", Attr: "Age"}},
			{{Var: "p", Attr: "HIV"}, {Var: "s", Attr: "Unique"}},
			{{Var: "c", Attr: "Infected"}, {Var: "p", Attr: "USBorn"}, {Var: "s", Attr: "DrugResistant"}},
		}
		return eval.Fig6Sets("6b", w, suites, 4400, opt)
	case "6c":
		w := eval.FINWorkload(fin())
		suites := [][]query.Target{
			{{Var: "t", Attr: "Type"}, {Var: "a", Attr: "Balance"}},
			{{Var: "t", Attr: "Amount"}, {Var: "a", Attr: "Frequency"}, {Var: "d", Attr: "AvgSalary"}},
			{{Var: "t", Attr: "Channel"}, {Var: "a", Attr: "CardType"}, {Var: "d", Attr: "Urban"}},
		}
		return eval.Fig6Sets("6c", w, suites, 2000, opt)
	case "7a":
		return eval.Fig7a(census(), []int{500, 2500, 4500, 6500, 8500}, opt)
	case "7b":
		return eval.Fig7b([]int{16000, 32000, 64000, 128000}, 3500, opt)
	case "7c":
		return eval.Fig7c(census(), []int{1000, 3000, 5000, 7000, 9000},
			[]string{"WorkerClass", "Education", "MaritalStatus"}, opt)
	case "ab-scoring":
		return eval.AblationScoring(census(), []string{"WorkerClass", "Education", "MaritalStatus"},
			[]int{1500, 3000, 4500}, opt)
	case "ab-topk":
		return eval.AblationTopK(census(), []string{"WorkerClass", "Education", "MaritalStatus"},
			3500, []int{0, 2, 3, 5}, opt)
	default:
		return nil, fmt.Errorf("unknown figure id %q", id)
	}
}

func printScatter(points []eval.ScatterPoint) {
	fmt.Println("Figure 5c: per-query adjusted relative error, SAMPLE (x) vs PRM (y)")
	var prmMean, sampleMean float64
	prmWins := 0
	for _, p := range points {
		prmMean += p.PRMErr
		sampleMean += p.SampleErr
		if p.PRMErr < p.SampleErr {
			prmWins++
		}
	}
	n := float64(len(points))
	fmt.Printf("  queries: %d   mean SAMPLE err: %.1f%%   mean PRM err: %.1f%%   PRM strictly better on %d\n",
		len(points), sampleMean/n, prmMean/n, prmWins)
	fmt.Println("  sample of points (SAMPLE%, PRM%):")
	step := len(points) / 20
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(points); i += step {
		fmt.Printf("    %8.1f %8.1f\n", points[i].SampleErr, points[i].PRMErr)
	}
}
