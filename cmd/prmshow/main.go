// Command prmshow learns a model and prints its dependency structure,
// storage breakdown and a quality summary — the quickest way to inspect
// what a PRM finds in a database. The input is either a built-in synthetic
// dataset or a directory of CSVs in the prmgen layout.
//
//	prmshow -dataset tb -budget 4400
//	prmshow -csv ./data/tb -budget 4400
//
// With -snapshot it instead reads a persisted model — a framed snapshot
// from prmserved's -store-dir, or any raw stream written by
// Model.Encode — and prints its summary without a dataset or a running
// daemon, so operators can inspect on-disk state directly:
//
//	prmshow -snapshot /var/lib/prmsel/census-00000003.snap
//
// With -wal it inspects a model's write-ahead log directory offline:
// per-segment record counts and sequence ranges, torn tails, and the
// replay watermark — read-only, nothing is quarantined or repaired:
//
//	prmshow -wal /var/lib/prmsel/wal/census
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"prmsel"
	"prmsel/internal/cliutil"
	"prmsel/internal/learn"
	"prmsel/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("prmshow: ")
	name := flag.String("dataset", "census", cliutil.DatasetHelp)
	csvDir := flag.String("csv", "", "directory of <table>.csv files (overrides -dataset)")
	rows := flag.Int("rows", 40000, "census rows")
	scale := flag.Float64("scale", 1.0, "TB/FIN scale")
	seed := flag.Int64("seed", 1, "generator seed")
	budget := flag.Int("budget", 4096, "model storage budget in bytes")
	cpd := flag.String("cpd", "tree", "CPD representation: tree or table")
	uniform := flag.Bool("uniform-join", false, "learn the BN+UJ baseline instead")
	verbose := flag.Bool("verbose", false, "also print each variable's CPD")
	save := flag.String("save", "", "write the learned model (gob) to this path")
	load := flag.String("load", "", "load a model from this path instead of learning")
	snapshot := flag.String("snapshot", "", "print a persisted store snapshot (or raw encoded model) and exit; needs no dataset")
	walDir := flag.String("wal", "", "inspect a write-ahead log directory (read-only) and exit")
	flag.Parse()

	if *snapshot != "" {
		if err := showSnapshot(*snapshot, *verbose); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *walDir != "" {
		if err := showWAL(*walDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	db, err := cliutil.LoadDB(*csvDir, *name, *rows, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}

	kind := learn.Tree
	if *cpd == "table" {
		kind = learn.Table
	}
	var model *prmsel.Model
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		model, err = prmsel.LoadModel(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		model, err = prmsel.Build(db, prmsel.Config{
			CPD:         kind,
			BudgetBytes: *budget,
			UniformJoin: *uniform,
			Seed:        *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Encode(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved model to %s\n", *save)
	}

	fmt.Println("tables:")
	for _, tn := range db.TableNames() {
		t := db.Table(tn)
		attrs := make([]string, len(t.Attributes))
		for i, a := range t.Attributes {
			attrs[i] = fmt.Sprintf("%s(%d)", a.Name, a.Card())
		}
		fmt.Printf("  %-12s %7d rows   %s\n", tn, t.Len(), strings.Join(attrs, " "))
	}
	fmt.Printf("\nmodel: %d bytes (budget %d), %d parameters, %s CPDs\n\n",
		model.StorageBytes(), *budget, model.NumParams(), *cpd)
	fmt.Println("dependency structure:")
	fmt.Print(model.String())
	if *verbose {
		fmt.Println("\nconditional probability distributions:")
		fmt.Print(model.RenderCPDs())
	}
}

// showSnapshot prints a persisted model's summary. Framed store
// snapshots are validated (magic, version, checksum) before decoding;
// anything without the snapshot magic is treated as a raw Model.Encode
// stream.
func showSnapshot(path string, verbose bool) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	form := "raw model stream"
	payload, err := store.Payload(b)
	switch {
	case err == nil:
		form = fmt.Sprintf("framed store snapshot (version %d, %d-byte payload, checksum ok)", store.Version, len(payload))
	case errors.Is(err, store.ErrNotSnapshot):
		payload = b
	default:
		return fmt.Errorf("%s: %w", path, err)
	}
	model, err := prmsel.LoadModel(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("snapshot: %s\n", path)
	fmt.Printf("format:   %s\n", form)
	fmt.Printf("\nmodel: %d bytes, %d parameters\n\n", model.StorageBytes(), model.NumParams())
	fmt.Println("dependency structure:")
	fmt.Print(model.String())
	if verbose {
		fmt.Println("\nconditional probability distributions:")
		fmt.Print(model.RenderCPDs())
	}
	return nil
}

// showWAL prints a read-only report of a write-ahead log directory:
// what a restart would replay, and what it would quarantine.
func showWAL(dir string) error {
	info, err := store.InspectWAL(dir)
	if err != nil {
		return err
	}
	fmt.Printf("wal: %s\n\n", dir)
	if len(info.Segments) == 0 {
		fmt.Println("no segments (empty or never written)")
		return nil
	}
	fmt.Println("segments:")
	for _, seg := range info.Segments {
		span := "empty"
		if seg.Records > 0 {
			span = fmt.Sprintf("seq %d..%d", seg.FirstSeq, seg.LastSeq)
		}
		fmt.Printf("  %-18s %6d records  %8d bytes  %s\n", seg.File, seg.Records, seg.Bytes, span)
	}
	fmt.Printf("\ntotal: %d records, %d bytes\n", info.Records, info.Bytes)
	if info.Records > 0 {
		fmt.Printf("replay range: seq %d..%d\n", info.FirstSeq, info.LastSeq)
		if info.FirstSeq > 1 {
			fmt.Printf("watermark: records through seq %d were persisted in a snapshot and reclaimed\n", info.FirstSeq-1)
		}
	}
	if len(info.TornTails) > 0 {
		fmt.Println("\ntorn tails (partial records a restart will quarantine, never replay):")
		for _, tear := range info.TornTails {
			fmt.Printf("  %s at offset %d: %d bytes (%s)\n", tear.Segment, tear.Offset, tear.Bytes, tear.Reason)
		}
	} else {
		fmt.Println("no torn tails")
	}
	return nil
}
