// The multi-core scaling sweep: measure the cached-hit read path at a
// list of GOMAXPROCS settings and report how throughput scales with
// cores. A lock-free read path scales near-linearly; a mutex on the hit
// path flattens the curve, which is exactly what the -min-scale gate
// (wired into `make perfscale`) catches in CI.
//
// The sweep is deliberately closed loop, the opposite of the main load
// run: each worker issues a request, waits for it, and issues the next,
// so the server is saturated at every point and the measurement is of
// service capacity, not of a fixed arrival schedule. It also bypasses the
// network — workers call the handler's ServeHTTP directly — so the curve
// reflects the serving stack, not loopback socket throughput.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type sweepConfig struct {
	gen            *generator
	dataset, model string
	rows           int
	scale          float64
	seed           int64
	distinct       int
	procsList      string // comma-separated GOMAXPROCS values
	duration       time.Duration
	concurrency    int // workers per point; 0 = 4×procs
	minScale       float64
	jsonPath       string
	journalSample  int
}

type sweepPoint struct {
	Procs     int     `json:"procs"`
	Workers   int     `json:"workers"`
	Completed int64   `json:"completed"`
	QPS       float64 `json:"qps"`
	P50US     int64   `json:"p50_us"`
	P99US     int64   `json:"p99_us"`
	ScaleVs1  float64 `json:"scale_vs_1proc,omitempty"`
}

type sweepReport struct {
	GoVersion        string       `json:"go_version"`
	NumCPU           int          `json:"num_cpu"`
	Dataset          string       `json:"dataset"`
	Model            string       `json:"model"`
	Distinct         int          `json:"distinct_queries"`
	PointDurationSec float64      `json:"duration_seconds_per_point"`
	Points           []sweepPoint `json:"points"`
	MinScale         float64      `json:"min_scale_gate,omitempty"`
	GateEnforced     bool         `json:"gate_enforced"`
	GateSkipReason   string       `json:"gate_skip_reason,omitempty"`
	Violations       []string     `json:"violations,omitempty"`
}

func parseProcsList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sweep entry %q (want positive integers, e.g. 1,2,4)", f)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

func runSweep(cfg sweepConfig) int {
	procs, err := parseProcsList(cfg.procsList)
	if err != nil {
		log.Print(err)
		return 1
	}

	srv, cleanup := buildInProcess(inprocOptions{
		dataset: cfg.dataset, model: cfg.model, rows: cfg.rows,
		scale: cfg.scale, seed: cfg.seed,
		journalSample: cfg.journalSample,
	})
	defer cleanup()
	handler := srv.Handler()

	// One shared warm server: sweep the distinct pool once so every point
	// measures the steady-state cached-hit path, and points differ only in
	// GOMAXPROCS — never in cache temperature.
	for _, body := range cfg.gen.pool {
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(string(body))))
		if rr.Code != http.StatusOK {
			log.Printf("warmup request failed: %d %s", rr.Code, rr.Body)
			return 1
		}
	}
	log.Printf("warmed %d distinct queries; sweeping GOMAXPROCS %v (%v per point)",
		len(cfg.gen.pool), procs, cfg.duration)

	pool := make([]string, len(cfg.gen.pool))
	for i, b := range cfg.gen.pool {
		pool[i] = string(b)
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rep := &sweepReport{
		GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(),
		Dataset: cfg.dataset, Model: cfg.model, Distinct: cfg.distinct,
		PointDurationSec: cfg.duration.Seconds(),
		MinScale:         cfg.minScale,
	}
	for _, p := range procs {
		rep.Points = append(rep.Points, measurePoint(handler, pool, p, cfg.concurrency, cfg.duration))
	}

	base := rep.Points[0]
	for i := range rep.Points {
		if base.Procs == 1 && base.QPS > 0 {
			rep.Points[i].ScaleVs1 = rep.Points[i].QPS / base.QPS
		}
	}
	for _, pt := range rep.Points {
		log.Printf("GOMAXPROCS=%d workers=%d: %.0f qps  p50 %s  p99 %s  (%.2fx vs 1 proc)",
			pt.Procs, pt.Workers, pt.QPS, us(pt.P50US), us(pt.P99US), pt.ScaleVs1)
	}

	// The scale gate: enforced only when the hardware can actually run the
	// largest point in parallel — a 1-core container cannot demonstrate
	// 4-core scaling, so it skips loudly instead of failing vacuously.
	if cfg.minScale > 0 {
		largest := procs[len(procs)-1]
		switch {
		case largest <= 1 || base.Procs != 1:
			rep.GateSkipReason = "gate needs a sweep starting at 1 proc with a larger top point"
			log.Printf("min-scale gate skipped: %s", rep.GateSkipReason)
		case rep.NumCPU < largest:
			rep.GateSkipReason = fmt.Sprintf("NumCPU=%d < largest sweep point %d", rep.NumCPU, largest)
			log.Printf("min-scale gate skipped: %s", rep.GateSkipReason)
		default:
			rep.GateEnforced = true
			top := rep.Points[len(rep.Points)-1]
			if top.ScaleVs1 < cfg.minScale {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"QPS at %d procs is %.2fx the 1-proc QPS, below the %.2fx floor",
					top.Procs, top.ScaleVs1, cfg.minScale))
			}
		}
	}

	if cfg.jsonPath != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(cfg.jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Print(err)
			return 1
		}
		log.Printf("sweep report written to %s", cfg.jsonPath)
	}
	for _, v := range rep.Violations {
		log.Printf("VIOLATION: %s", v)
	}
	if len(rep.Violations) > 0 {
		return 1
	}
	return 0
}

// measurePoint saturates the handler from a fixed worker pool at the
// given GOMAXPROCS and reports throughput and closed-loop latency.
func measurePoint(handler http.Handler, pool []string, procs, concurrency int, duration time.Duration) sweepPoint {
	runtime.GOMAXPROCS(procs)
	workers := concurrency
	if workers <= 0 {
		workers = 4 * procs
	}

	var (
		completed atomic.Int64
		hist      hdrHist
		stop      atomic.Bool
		wg        sync.WaitGroup
	)
	start := make(chan struct{})
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := g; !stop.Load(); i++ {
				body := pool[i%len(pool)]
				rr := httptest.NewRecorder()
				t0 := time.Now()
				handler.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(body)))
				lat := time.Since(t0)
				if rr.Code == http.StatusOK {
					completed.Add(1)
					hist.record(lat.Microseconds())
				}
			}
		}(g)
	}
	started := time.Now()
	close(start)
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(started)

	s := hist.summary()
	return sweepPoint{
		Procs:     procs,
		Workers:   workers,
		Completed: completed.Load(),
		QPS:       float64(completed.Load()) / elapsed.Seconds(),
		P50US:     s.P50US,
		P99US:     s.P99US,
	}
}
