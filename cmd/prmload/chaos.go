package main

// Chaos soak mode: run the in-process stack under closed-loop load while
// a seeded random fault schedule arms and clears injection points across
// the inference, WAL, and refit paths, then assert the self-protection
// invariants from the outside:
//
//   - never a wrong answer presented as a sound one: every 200 estimate
//     carries a tier, and any tier below exact carries a tier_reason;
//   - never wedged: every request gets an HTTP answer, and the only 5xx
//     allowed is a structured 503 (JSON body, Retry-After) from the shed /
//     breaker / degraded-WAL paths;
//   - recovers: once the schedule's fault-free tail has passed and the
//     load stops, /healthz must report resilience state "normal" within
//     the recovery timeout.
//
// The schedule is deterministic in -chaos-seed; the fault *timing* is
// wall-clock, so runs are reproducible in shape rather than bit-for-bit.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"prmsel/internal/faults"
)

type chaosConfig struct {
	gen             *generator
	dataset, model  string
	rows            int
	scale           float64
	seed            int64 // workload/model seed
	chaosSeed       int64 // fault schedule seed
	duration        time.Duration
	recoveryTimeout time.Duration
}

// chaosStats accumulates what the workers observed. Violations keep the
// first few verbatim and count the rest, so a broken invariant doesn't
// flood the report.
type chaosStats struct {
	mu          sync.Mutex
	requests    int64
	statuses    map[int]int64
	degraded    int64 // 200 answers from a tier below exact (all labeled)
	protective  int64 // structured shed / breaker / backlog refusals
	violations  []string
	nViolations int64
	statesSeen  map[string]bool
}

func (c *chaosStats) violate(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nViolations++
	if len(c.violations) < 15 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

func runChaos(cfg chaosConfig) int {
	log.Printf("chaos soak: %v of load, fault schedule seed %d, recovery timeout %v",
		cfg.duration, cfg.chaosSeed, cfg.recoveryTimeout)

	// Chaos-tuned stack: short SLO windows and a fast controller tick so
	// brownout cycles (engage under faults, release after) fit inside a
	// seconds-long soak; a small cache so the query pool keeps missing and
	// the inference fault points stay hot; ingest always on so the WAL and
	// refit points are reachable whatever the mix says.
	ts, cleanup := startInProcess(inprocOptions{
		dataset: cfg.dataset, model: cfg.model,
		rows: cfg.rows, scale: cfg.scale, seed: cfg.seed,
		ingest:         true,
		cacheCapacity:  64,
		requestTimeout: 30 * time.Second,
		journalSample:  64,
		sloLatency:     10 * time.Millisecond,
		sloTarget:      0.999,
		sloWindows:     []time.Duration{2 * time.Second, 10 * time.Second},
		brownoutTick:   250 * time.Millisecond,
	})
	defer cleanup()
	base := strings.TrimRight(ts.URL, "/")

	// The fault menu: slow-and-flaky inference (the latency rides only the
	// erroring fraction; the approx point adds unconditional latency to
	// the sampling tier), a failing WAL fsync, failing snapshot writes,
	// and failing refits. Injected latencies sit just past the 10ms SLO
	// threshold, so fault windows burn the latency budget and engage the
	// brownout controller without stalling the soak.
	points := map[string]faults.Fault{
		"bayesnet.infer": faults.Compose(
			faults.Delay(15*time.Millisecond),
			faults.Prob(0.3, errors.New("chaos: injected inference failure"))),
		"bayesnet.approx": faults.Delay(12 * time.Millisecond),
		"store.wal.fsync": faults.Prob(0.5, errors.New("chaos: injected fsync failure")),
		"store.write":     faults.Prob(0.5, errors.New("chaos: injected snapshot write failure")),
		"ingest.refit":    faults.Prob(0.8, errors.New("chaos: injected refit failure")),
	}
	sched := faults.RandomSchedule(cfg.chaosSeed, cfg.duration, points)
	for _, ev := range sched.Events() {
		verb := "clear"
		if ev.Arm {
			verb = "arm"
		}
		log.Printf("schedule %8v %-5s %s", ev.At.Round(time.Millisecond), verb, ev.Point)
	}

	stopSched := make(chan struct{})
	schedDone := sched.Run(stopSched)

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}
	stats := &chaosStats{
		statuses:   map[int]int64{},
		statesSeen: map[string]bool{},
	}

	// Monitor: sample the reported resilience state through the run, both
	// as evidence the controller engaged and for the final report.
	stopLoad := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		tick := time.NewTicker(300 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopLoad:
				return
			case <-tick.C:
				if state, _, ok := chaosHealth(client, base); ok {
					stats.mu.Lock()
					stats.statesSeen[state] = true
					stats.mu.Unlock()
				}
			}
		}
	}()

	// Closed-loop workers: unlike the open-loop measured run, chaos wants
	// sustained pressure, and a closed loop self-paces through the fault
	// windows instead of stacking unbounded in-flight requests.
	var genMu sync.Mutex
	nextReq := func() genReq {
		genMu.Lock()
		defer genMu.Unlock()
		return cfg.gen.next()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				r := nextReq()
				resp, err := client.Post(base+r.path, "application/json", bytes.NewReader(r.body))
				stats.mu.Lock()
				stats.requests++
				stats.mu.Unlock()
				if err != nil {
					stats.violate("transport error on %s: %v (a self-protecting server answers, it does not wedge)", r.kind, err)
					time.Sleep(10 * time.Millisecond)
					continue
				}
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				inspectChaosResponse(stats, r.kind, resp.StatusCode, resp.Header.Get("Retry-After"), body)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	<-time.After(cfg.duration)
	close(stopLoad)
	wg.Wait()
	monWG.Wait()
	close(stopSched)
	<-schedDone // all fault points cleared from here on

	// Recovery: the schedule leaves the last 30% of the run fault-free, so
	// by the time the load stops the controller should be stepping down;
	// give it the recovery timeout to reach normal.
	recoveryStart := time.Now()
	recovered := false
	var transitions int64
	var lastState string
	for time.Since(recoveryStart) < cfg.recoveryTimeout {
		state, tr, ok := chaosHealth(client, base)
		if ok {
			lastState, transitions = state, tr
			if state == "normal" {
				recovered = true
				break
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !recovered {
		stats.violate("server did not recover to resilience state normal within %v after faults cleared (last state %q)",
			cfg.recoveryTimeout, lastState)
	}
	if transitions == 0 {
		stats.violate("brownout controller never left normal — the chaos schedule produced no pressure")
	}

	// The operator surface must expose the resilience loop throughout.
	if mbody, err := chaosGet(client, base+"/metrics"); err != nil {
		stats.violate("/metrics unreachable after the soak: %v", err)
	} else {
		for _, want := range []string{"prm_resilience_state", "prm_resilience_transitions_total", "prm_breaker_state"} {
			if !strings.Contains(mbody, want) {
				stats.violate("/metrics lacks the %s series", want)
			}
		}
	}

	printChaosReport(stats, recovered, time.Since(recoveryStart), transitions)
	if stats.nViolations > 0 {
		return 1
	}
	return 0
}

// inspectChaosResponse applies the soak invariants to one answer.
func inspectChaosResponse(stats *chaosStats, kind string, status int, retryAfter string, body []byte) {
	stats.mu.Lock()
	stats.statuses[status]++
	stats.mu.Unlock()

	switch {
	case status == http.StatusOK:
		switch kind {
		case "estimate":
			var out struct {
				Estimate   float64 `json:"estimate"`
				Tier       string  `json:"tier"`
				TierReason string  `json:"tier_reason"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				stats.violate("estimate 200 with unparseable body: %v", err)
				return
			}
			checkAnswer(stats, "estimate", out.Estimate, out.Tier, out.TierReason)
		case "batch":
			var out struct {
				Items []struct {
					Estimate   float64 `json:"estimate"`
					Tier       string  `json:"tier"`
					TierReason string  `json:"tier_reason"`
					Error      string  `json:"error"`
				} `json:"items"`
			}
			if err := json.Unmarshal(body, &out); err != nil {
				stats.violate("batch 200 with unparseable body: %v", err)
				return
			}
			for _, item := range out.Items {
				if item.Error != "" {
					// In-place refusal (shed or per-item failure): allowed, as
					// long as it is a refusal and not a mislabeled answer.
					stats.mu.Lock()
					stats.protective++
					stats.mu.Unlock()
					continue
				}
				checkAnswer(stats, "batch item", item.Estimate, item.Tier, item.TierReason)
			}
		}
	case status == http.StatusTooManyRequests:
		if retryAfter == "" {
			stats.violate("429 on %s without Retry-After", kind)
			return
		}
		stats.mu.Lock()
		stats.protective++
		stats.mu.Unlock()
	case status == http.StatusServiceUnavailable:
		// The only 5xx a protecting server may emit: structured (JSON
		// error/reason) and schedulable (Retry-After).
		if retryAfter == "" {
			stats.violate("503 on %s without Retry-After: %s", kind, truncateBody(body))
			return
		}
		var out struct {
			Error  string `json:"error"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &out); err != nil || (out.Error == "" && out.Reason == "") {
			stats.violate("503 on %s without a structured body: %s", kind, truncateBody(body))
			return
		}
		stats.mu.Lock()
		stats.protective++
		stats.mu.Unlock()
	case status >= 500:
		stats.violate("unexpected %d on %s: %s", status, kind, truncateBody(body))
	default:
		// Other 4xx (the generator only sends well-formed requests, so
		// these should not appear): counted in the status table, reported,
		// but not an invariant violation.
	}
}

// checkAnswer enforces the labeling invariant on one 200 estimate: finite
// non-negative value, a tier, and a reason whenever the tier is degraded.
func checkAnswer(stats *chaosStats, what string, estimate float64, tier, reason string) {
	if math.IsNaN(estimate) || math.IsInf(estimate, 0) || estimate < 0 {
		stats.violate("%s 200 with non-finite or negative estimate %v", what, estimate)
		return
	}
	if tier == "" {
		stats.violate("%s 200 without a tier label", what)
		return
	}
	if tier != "exact" {
		if reason == "" {
			stats.violate("%s 200 degraded to tier %q without a tier_reason", what, tier)
			return
		}
		stats.mu.Lock()
		stats.degraded++
		stats.mu.Unlock()
	}
}

// chaosHealth reads the resilience block out of /healthz.
func chaosHealth(client *http.Client, base string) (state string, transitions int64, ok bool) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return "", 0, false
	}
	defer resp.Body.Close()
	var body struct {
		Resilience struct {
			State       string `json:"state"`
			Transitions int64  `json:"transitions"`
		} `json:"resilience"`
	}
	if json.NewDecoder(resp.Body).Decode(&body) != nil || body.Resilience.State == "" {
		return "", 0, false
	}
	return body.Resilience.State, body.Resilience.Transitions, true
}

func chaosGet(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func truncateBody(body []byte) string {
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

func printChaosReport(stats *chaosStats, recovered bool, recoveryTime time.Duration, transitions int64) {
	stats.mu.Lock()
	defer stats.mu.Unlock()
	codes := make([]int, 0, len(stats.statuses))
	for code := range stats.statuses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	var byStatus strings.Builder
	for i, code := range codes {
		if i > 0 {
			byStatus.WriteString(", ")
		}
		fmt.Fprintf(&byStatus, "%d×%d", code, stats.statuses[code])
	}
	states := make([]string, 0, len(stats.statesSeen))
	for s := range stats.statesSeen {
		states = append(states, s)
	}
	sort.Strings(states)

	log.Printf("chaos: %d requests (%s)", stats.requests, byStatus.String())
	log.Printf("chaos: %d degraded answers (all tier-labeled), %d protective refusals (shed/breaker/backlog, all with Retry-After)",
		stats.degraded, stats.protective)
	log.Printf("chaos: resilience states seen during the soak: %s", strings.Join(states, ", "))
	if recovered {
		log.Printf("chaos: recovered to normal %v after faults cleared (%d controller transitions)",
			recoveryTime.Round(10*time.Millisecond), transitions)
	}
	if stats.nViolations > 0 {
		for _, v := range stats.violations {
			log.Printf("VIOLATION: %s", v)
		}
		if extra := stats.nViolations - int64(len(stats.violations)); extra > 0 {
			log.Printf("VIOLATION: ... and %d more", extra)
		}
		log.Printf("chaos soak FAILED (%d violations)", stats.nViolations)
	} else {
		log.Printf("chaos soak passed: no invariant violations")
	}
}
