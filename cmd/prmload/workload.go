package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"prmsel/internal/dataset"
)

// genReq is one scheduled request: where to send it and what to send.
type genReq struct {
	kind string // estimate | batch | ingest
	path string
	body []byte
}

// generator produces the request stream. Query bodies are pre-rendered:
// a pool of distinct point queries (the pool size controls how much of
// the traffic the server's inference cache can absorb) drawn uniformly,
// batches assembled from the same pool so batch and single traffic share
// cache keys, and ingest rows rolled fresh per request.
type generator struct {
	rng       *rand.Rand
	db        *dataset.Database
	model     string
	batchSize int

	kinds   []string
	weights []float64 // cumulative, same order as kinds

	pool      [][]byte // rendered /v1/estimate bodies
	poolBatch []string // the pool's raw query texts, for batches

	ingestTables []string // tables without foreign keys accept simple rows
}

// parseMix parses "estimate=0.9,batch=0.1" into cumulative weights.
func parseMix(spec string) (kinds []string, cum []float64, err error) {
	total := 0.0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, nil, fmt.Errorf("mix entry %q is not kind=weight", part)
		}
		switch name {
		case "estimate", "batch", "ingest":
		default:
			return nil, nil, fmt.Errorf("unknown workload kind %q (estimate, batch, ingest)", name)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return nil, nil, fmt.Errorf("bad weight in %q", part)
		}
		if w == 0 {
			continue
		}
		total += w
		kinds = append(kinds, name)
		cum = append(cum, total)
	}
	if total == 0 {
		return nil, nil, fmt.Errorf("mix %q has no positive weights", spec)
	}
	for i := range cum {
		cum[i] /= total
	}
	return kinds, cum, nil
}

func newGenerator(db *dataset.Database, model, mixSpec string, distinct, batchSize int, seed int64) (*generator, error) {
	kinds, weights, err := parseMix(mixSpec)
	if err != nil {
		return nil, err
	}
	g := &generator{
		rng:       rand.New(rand.NewSource(seed)),
		db:        db,
		model:     model,
		batchSize: batchSize,
		kinds:     kinds,
		weights:   weights,
	}
	for _, tn := range db.TableNames() {
		if len(db.Table(tn).ForeignKeys) == 0 {
			g.ingestTables = append(g.ingestTables, tn)
		}
	}
	for _, k := range kinds {
		if k == "ingest" && len(g.ingestTables) == 0 {
			return nil, fmt.Errorf("mix includes ingest but every table has foreign keys")
		}
	}
	if distinct < 1 {
		distinct = 1
	}
	seen := map[string]bool{}
	for len(g.pool) < distinct {
		q := g.randomQuery()
		if seen[q] {
			continue
		}
		seen[q] = true
		body, _ := json.Marshal(map[string]string{"model": model, "query": q})
		g.pool = append(g.pool, body)
		g.poolBatch = append(g.poolBatch, q)
	}
	return g, nil
}

// randomQuery renders one point query: a random table, one to three
// distinct attributes, a random label each.
func (g *generator) randomQuery() string {
	names := g.db.TableNames()
	tn := names[g.rng.Intn(len(names))]
	t := g.db.Table(tn)
	alias := strings.ToLower(tn[:1])
	n := 1 + g.rng.Intn(3)
	if n > len(t.Attributes) {
		n = len(t.Attributes)
	}
	idx := g.rng.Perm(len(t.Attributes))[:n]
	sort.Ints(idx)
	var b strings.Builder
	fmt.Fprintf(&b, "FROM %s %s WHERE ", tn, alias)
	for i, ai := range idx {
		if i > 0 {
			b.WriteString(" AND ")
		}
		a := t.Attributes[ai]
		fmt.Fprintf(&b, "%s.%s = %s", alias, a.Name, a.Values[g.rng.Intn(a.Card())])
	}
	return b.String()
}

// next draws the next request from the mix.
func (g *generator) next() genReq {
	r := g.rng.Float64()
	kind := g.kinds[len(g.kinds)-1]
	for i, cum := range g.weights {
		if r < cum {
			kind = g.kinds[i]
			break
		}
	}
	switch kind {
	case "batch":
		qs := make([]string, g.batchSize)
		for i := range qs {
			qs[i] = g.poolBatch[g.rng.Intn(len(g.poolBatch))]
		}
		body, _ := json.Marshal(map[string]any{"model": g.model, "queries": qs})
		return genReq{kind: "batch", path: "/v1/estimate/batch", body: body}
	case "ingest":
		tn := g.ingestTables[g.rng.Intn(len(g.ingestTables))]
		t := g.db.Table(tn)
		attrs := make(map[string]any, len(t.Attributes))
		for _, a := range t.Attributes {
			attrs[a.Name] = a.Values[g.rng.Intn(a.Card())]
		}
		body, _ := json.Marshal(map[string]any{
			"model": g.model,
			"row":   map[string]any{"table": tn, "attrs": attrs},
		})
		return genReq{kind: "ingest", path: "/v1/ingest", body: body}
	default:
		return genReq{kind: "estimate", path: "/v1/estimate", body: g.pool[g.rng.Intn(len(g.pool))]}
	}
}
