package main

import (
	"math/bits"
	"sync/atomic"
)

// hdrHist is an HDR-style log-linear latency histogram: 64 linear
// subbuckets per power-of-two magnitude, so every recorded value lands in
// a bucket within ~1.6% of its true value regardless of scale. Values are
// microseconds. Recording is one atomic add — safe from every worker
// goroutine — and quantiles are computed once at the end of the run.
//
// Unlike a plain sorted-sample percentile, the histogram never drops or
// samples observations, which is what makes the coordinated-omission
// correction honest: every scheduled request contributes its full
// schedule-to-completion latency.
type hdrHist struct {
	counts [hdrSize]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

const (
	hdrSubBits = 6               // 64 subbuckets per magnitude
	hdrSub     = 1 << hdrSubBits // 64
	// Values below 2*hdrSub (128µs) index exactly; above, log-linear.
	hdrLinearMax = hdrSub * 2
	// Magnitudes 7..62 cover every positive int64 microsecond value.
	hdrSize = hdrLinearMax + (63-7)*hdrSub
)

// indexOf maps a microsecond value to its bucket.
func indexOf(us int64) int {
	if us < 0 {
		us = 0
	}
	if us < hdrLinearMax {
		return int(us)
	}
	exp := bits.Len64(uint64(us)) - 1 // 7..62
	sub := int((us >> uint(exp-hdrSubBits)) & (hdrSub - 1))
	return hdrLinearMax + (exp-7)*hdrSub + sub
}

// valueAt returns the inclusive upper edge of a bucket, so reported
// quantiles never understate the measured latency.
func valueAt(idx int) int64 {
	if idx < hdrLinearMax {
		return int64(idx)
	}
	rel := idx - hdrLinearMax
	exp := 7 + rel/hdrSub
	sub := int64(rel % hdrSub)
	return (int64(hdrSub)+sub+1)<<uint(exp-hdrSubBits) - 1
}

func (h *hdrHist) record(us int64) {
	h.counts[indexOf(us)].Add(1)
	h.total.Add(1)
	h.sum.Add(us)
	for {
		old := h.max.Load()
		if us <= old || h.max.CompareAndSwap(old, us) {
			return
		}
	}
}

// quantile returns the latency at or below which fraction q of the
// recorded values fall (0 when nothing was recorded).
func (h *hdrHist) quantile(q float64) int64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := int64(q*float64(total) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= target {
			return valueAt(i)
		}
	}
	return h.max.Load()
}

func (h *hdrHist) mean() float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(total)
}

// latencySummary is the report block rendered from one histogram.
type latencySummary struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P90US  int64   `json:"p90_us"`
	P99US  int64   `json:"p99_us"`
	P999US int64   `json:"p999_us"`
	MaxUS  int64   `json:"max_us"`
}

func (h *hdrHist) summary() latencySummary {
	return latencySummary{
		Count:  h.total.Load(),
		MeanUS: h.mean(),
		P50US:  h.quantile(0.50),
		P90US:  h.quantile(0.90),
		P99US:  h.quantile(0.99),
		P999US: h.quantile(0.999),
		MaxUS:  h.max.Load(),
	}
}
