// Command prmload is an open-loop, coordinated-omission-safe load
// generator for the prmserved estimation service — the proof harness for
// the telemetry layer.
//
// Open loop means arrivals follow a fixed schedule (Poisson by default)
// that does not slow down when the server does; every request's latency
// is measured from its *scheduled* start, so time a request spends
// implicitly queued behind a stalled server counts against the server
// instead of silently vanishing (the coordinated-omission trap of
// closed-loop "send, wait, send" harnesses). Latencies land in an
// HDR-style log-linear histogram, so tail quantiles are exact to ~1.6%
// with no sampling.
//
//	prmload -addr http://localhost:8080 -model census -rate 300 -duration 10s
//	prmload -inprocess -rate 500 -duration 5s -json BENCH_PR7.json
//
// -inprocess builds the full serving stack in this process (no network)
// and can arm a fault-injection point (-fault) to soak the degradation
// paths under load. The run fails (exit 1) when -max-p99/-max-p999,
// -max-error-rate, or -fail-on-burn is violated, which is what `make
// loadsmoke` gates on.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"prmsel/internal/cliutil"
	"prmsel/internal/faults"
	"prmsel/internal/serve"
	"prmsel/internal/store"
)

type targetInfo struct {
	Addr        string  `json:"addr"`
	InProcess   bool    `json:"in_process"`
	Dataset     string  `json:"dataset"`
	Model       string  `json:"model"`
	RateQPS     float64 `json:"rate_qps"`
	DurationSec float64 `json:"duration_seconds"`
	Mix         string  `json:"mix"`
	Distinct    int     `json:"distinct_queries"`
	BatchSize   int     `json:"batch_size"`
	Poisson     bool    `json:"poisson"`
	Seed        int64   `json:"seed"`
	Fault       string  `json:"fault,omitempty"`
}

type report struct {
	GoVersion       string                    `json:"go_version"`
	GOMAXPROCS      int                       `json:"gomaxprocs"`
	Target          targetInfo                `json:"target"`
	Sent            int64                     `json:"sent"`
	Completed       int64                     `json:"completed"`
	Non2xx          int64                     `json:"non_2xx"`
	TransportErrors int64                     `json:"transport_errors"`
	ErrorRate       float64                   `json:"error_rate"`
	ElapsedSeconds  float64                   `json:"elapsed_seconds"`
	AchievedQPS     float64                   `json:"achieved_qps"`
	Latency         latencySummary            `json:"latency"` // successful requests, schedule-to-completion
	ByKind          map[string]latencySummary `json:"by_kind"`
	StatusCounts    map[string]int64          `json:"status_counts"`
	SLO             json.RawMessage           `json:"slo,omitempty"`
	Journal         json.RawMessage           `json:"journal,omitempty"`
	Violations      []string                  `json:"violations,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("prmload: ")
	addr := flag.String("addr", "", "target base URL (e.g. http://localhost:8080); empty requires -inprocess")
	inprocess := flag.Bool("inprocess", false, "build the serving stack in this process instead of dialing -addr")
	datasetName := flag.String("dataset", "census", "dataset whose schema drives query generation (and the in-process model): "+cliutil.DatasetHelp)
	model := flag.String("model", "", "model name on the server (default: the dataset name)")
	rows := flag.Int("rows", 20000, "in-process model rows")
	scale := flag.Float64("scale", 1.0, "in-process TB/FIN/Shop scale")
	seed := flag.Int64("seed", 1, "workload seed")
	rate := flag.Float64("rate", 200, "target arrival rate, requests/second")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	mix := flag.String("mix", "estimate=1", "workload mix, e.g. estimate=0.9,batch=0.05,ingest=0.05")
	distinct := flag.Int("distinct", 256, "distinct point queries in the pool (controls server cache hit rate)")
	batchSize := flag.Int("batch-size", 8, "queries per batch request")
	poisson := flag.Bool("poisson", true, "Poisson arrivals (false: fixed intervals)")
	reqTimeout := flag.Duration("req-timeout", 10*time.Second, "per-request client timeout")
	warmup := flag.Duration("warmup", 0, "extra unmeasured random traffic after the pool sweep")
	jsonPath := flag.String("json", "", "write the report as JSON to this file")
	maxP99 := flag.Duration("max-p99", 0, "fail when successful-request p99 exceeds this (0 = off)")
	maxP999 := flag.Duration("max-p999", 0, "fail when successful-request p99.9 exceeds this (0 = off)")
	maxErrRate := flag.Float64("max-error-rate", -1, "fail when the non-2xx+transport error fraction exceeds this (negative = off; 0 = any error fails)")
	failOnBurn := flag.Bool("fail-on-burn", false, "fail when the server reports any SLO objective burning after the run")
	fault := flag.String("fault", "", "arm this fault-injection point for the run (requires -inprocess), e.g. bayesnet.infer")
	faultLatency := flag.Duration("fault-latency", 0, "injected latency at -fault")
	faultErr := flag.String("fault-err", "", "injected error message at -fault (empty = latency only)")
	journalSample := flag.Int("journal-sample", 64, "in-process server: journal 1 in N ordinary successes")
	sloLatency := flag.Duration("slo-latency", 0, "in-process server: latency objective threshold (0 = server default)")
	sloTarget := flag.Float64("slo-latency-target", 0, "in-process server: fraction of estimates that must meet -slo-latency (0 = server default)")
	chaos := flag.Bool("chaos", false, "chaos soak: run a seeded random fault schedule against the in-process stack and assert self-protection invariants (requires -inprocess)")
	chaosSeed := flag.Int64("chaos-seed", 42, "seed for the random fault schedule (chaos mode)")
	chaosRecovery := flag.Duration("chaos-recovery-timeout", 20*time.Second, "how long after the load stops the server has to report resilience state normal (chaos mode)")
	sweep := flag.String("sweep", "", "comma-separated GOMAXPROCS values (e.g. 1,2,4): run a closed-loop cached-hit scaling sweep instead of open-loop load (requires -inprocess)")
	sweepDuration := flag.Duration("sweep-duration", 3*time.Second, "measured run length per sweep point")
	sweepConcurrency := flag.Int("sweep-concurrency", 0, "closed-loop workers per sweep point (0 = 4×procs)")
	minScale := flag.Float64("min-scale", 0, "fail unless QPS at the largest sweep point is at least this multiple of 1-proc QPS (0 = off; skipped with a log line when NumCPU < the largest point)")
	flag.Parse()

	if *model == "" {
		*model = *datasetName
	}
	if *addr == "" && !*inprocess {
		log.Fatal("need -addr or -inprocess")
	}
	if *fault != "" && !*inprocess {
		log.Fatal("-fault requires -inprocess (fault points live in this process)")
	}
	if *chaos && !*inprocess {
		log.Fatal("-chaos requires -inprocess (fault points and the brownout loop live in this process)")
	}
	if *chaos && *fault != "" {
		log.Fatal("-chaos builds its own fault schedule; drop -fault")
	}
	if *sweep != "" && !*inprocess {
		log.Fatal("-sweep requires -inprocess (the sweep drives the handler directly)")
	}

	// The workload generator needs the dataset schema (tables, attributes,
	// labels) whether the server is local or remote; synthetic schemas are
	// deterministic, so a local load always matches the served model.
	db, err := cliutil.LoadDB("", *datasetName, *rows, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := newGenerator(db, *model, *mix, *distinct, *batchSize, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *sweep != "" {
		os.Exit(runSweep(sweepConfig{
			gen: gen, dataset: *datasetName, model: *model,
			rows: *rows, scale: *scale, seed: *seed,
			distinct: *distinct, procsList: *sweep,
			duration: *sweepDuration, concurrency: *sweepConcurrency,
			minScale: *minScale, jsonPath: *jsonPath,
			journalSample: *journalSample,
		}))
	}

	if *chaos {
		os.Exit(runChaos(chaosConfig{
			gen: gen, dataset: *datasetName, model: *model,
			rows: *rows, scale: *scale, seed: *seed,
			chaosSeed: *chaosSeed, duration: *duration,
			recoveryTimeout: *chaosRecovery,
		}))
	}

	base := *addr
	if *inprocess {
		ts, cleanup := startInProcess(inprocOptions{
			dataset: *datasetName, model: *model, rows: *rows, scale: *scale, seed: *seed,
			ingest:        strings.Contains(*mix, "ingest"),
			journalSample: *journalSample,
			sloLatency:    *sloLatency, sloTarget: *sloTarget,
		})
		defer cleanup()
		base = ts.URL
	}
	base = strings.TrimRight(base, "/")

	if *fault != "" {
		f := faults.Fault{Latency: *faultLatency}
		if *faultErr != "" {
			f.Err = errors.New(*faultErr)
		}
		defer faults.Set(*fault, f)()
		log.Printf("armed fault %s (latency=%v err=%q)", *fault, *faultLatency, *faultErr)
	}

	client := &http.Client{
		Timeout: *reqTimeout,
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	// Warmup, closed loop and unmeasured: sweep the distinct-query pool
	// once so the measured run exercises the server's steady state (cache
	// hits at the configured pool size) rather than a cold cache — a cold
	// multi-attribute inference costs orders of magnitude more than a hit
	// and would swamp a short run's tail. -warmup adds extra random
	// traffic on top for connection and allocator warm-in.
	post := func(path string, body []byte) {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	warmStart := time.Now()
	for _, body := range gen.pool {
		post("/v1/estimate", body)
	}
	for deadline := time.Now().Add(*warmup); time.Now().Before(deadline); {
		r := gen.next()
		post(r.path, r.body)
	}
	log.Printf("warmed %d distinct queries in %v", len(gen.pool), time.Since(warmStart).Round(time.Millisecond))

	rep := run(client, base, gen, *rate, *duration, *poisson, *seed)
	rep.Target = targetInfo{
		Addr: *addr, InProcess: *inprocess, Dataset: *datasetName, Model: *model,
		RateQPS: *rate, DurationSec: duration.Seconds(), Mix: *mix,
		Distinct: *distinct, BatchSize: *batchSize, Poisson: *poisson, Seed: *seed,
		Fault: *fault,
	}
	rep.GoVersion = runtime.Version()
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	attachHealth(client, base, rep)

	// Gate the run.
	if *maxP99 > 0 && rep.Latency.P99US > maxP99.Microseconds() {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("p99 %dµs over the %v limit", rep.Latency.P99US, *maxP99))
	}
	if *maxP999 > 0 && rep.Latency.P999US > maxP999.Microseconds() {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("p99.9 %dµs over the %v limit", rep.Latency.P999US, *maxP999))
	}
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("error rate %.4f over the %.4f limit (%d non-2xx, %d transport)",
				rep.ErrorRate, *maxErrRate, rep.Non2xx, rep.TransportErrors))
	}
	if *failOnBurn {
		for _, name := range burningObjectives(rep.SLO) {
			rep.Violations = append(rep.Violations, fmt.Sprintf("SLO objective %q is burning", name))
		}
	}

	printReport(rep)
	if *jsonPath != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *jsonPath)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			log.Printf("VIOLATION: %s", v)
		}
		os.Exit(1)
	}
}

// run drives the open-loop schedule and collects the histograms.
func run(client *http.Client, base string, gen *generator, rate float64, duration time.Duration, poisson bool, seed int64) *report {
	var (
		sent, completed, non2xx, transport int64
		mu                                 sync.Mutex
		statuses                           = map[int]int64{}
		success                            = &hdrHist{}
		byKind                             = map[string]*hdrHist{}
	)
	for _, k := range []string{"estimate", "batch", "ingest"} {
		byKind[k] = &hdrHist{}
	}

	arrivals := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	interval := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	started := time.Now()
	sched := started
	deadline := started.Add(duration)
	for {
		if poisson {
			sched = sched.Add(time.Duration(arrivals.ExpFloat64() * float64(interval)))
		} else {
			sched = sched.Add(interval)
		}
		if sched.After(deadline) {
			break
		}
		// Sleep until the scheduled instant, then fire regardless of how
		// many requests are still in flight — the open-loop property.
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		r := gen.next()
		sent++
		wg.Add(1)
		go func(scheduled time.Time, r genReq) {
			defer wg.Done()
			resp, err := client.Post(base+r.path, "application/json", bytes.NewReader(r.body))
			status := 0
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				status = resp.StatusCode
			}
			lat := time.Since(scheduled) // from the schedule: CO-safe
			mu.Lock()
			completed++
			statuses[status]++
			mu.Unlock()
			switch {
			case err != nil:
				mu.Lock()
				transport++
				mu.Unlock()
			case status >= 200 && status < 300:
				success.record(lat.Microseconds())
				byKind[r.kind].record(lat.Microseconds())
			default:
				mu.Lock()
				non2xx++
				mu.Unlock()
			}
		}(sched, r)
	}
	wg.Wait()
	elapsed := time.Since(started)

	rep := &report{
		Sent:            sent,
		Completed:       completed,
		Non2xx:          non2xx,
		TransportErrors: transport,
		ElapsedSeconds:  elapsed.Seconds(),
		AchievedQPS:     float64(completed) / elapsed.Seconds(),
		Latency:         success.summary(),
		ByKind:          map[string]latencySummary{},
		StatusCounts:    map[string]int64{},
	}
	if completed > 0 {
		rep.ErrorRate = float64(non2xx+transport) / float64(completed)
	}
	for k, h := range byKind {
		if h.total.Load() > 0 {
			rep.ByKind[k] = h.summary()
		}
	}
	for code, n := range statuses {
		key := fmt.Sprintf("%d", code)
		if code == 0 {
			key = "transport_error"
		}
		rep.StatusCounts[key] = n
	}
	return rep
}

// inprocOptions configures the locally built serving stack. The zero
// fields fall back to the serve package's defaults; the chaos harness
// overrides the timing knobs to compress fault-and-recovery cycles into
// a short run.
type inprocOptions struct {
	dataset, model string
	rows           int
	scale          float64
	seed           int64
	ingest         bool // enable the WAL write path on a throwaway store
	cacheCapacity  int
	requestTimeout time.Duration
	journalSample  int
	sloLatency     time.Duration
	sloTarget      float64
	sloWindows     []time.Duration
	brownoutTick   time.Duration
	memSoftLimit   int64
}

// startInProcess builds the full serving stack locally: a registry with
// one model, ingest enabled (on a throwaway store) when the mix sends
// writes, and the standard handler behind an httptest listener.
func startInProcess(o inprocOptions) (*httptest.Server, func()) {
	srv, cleanup := buildInProcess(o)
	ts := httptest.NewServer(srv.Handler())
	return ts, func() {
		ts.Close()
		cleanup()
	}
}

// buildInProcess constructs the serving stack without a listener — the
// scaling sweep drives the handler directly so socket and client-stack
// costs don't pollute the per-core numbers.
func buildInProcess(o inprocOptions) (*serve.Server, func()) {
	reg := serve.NewRegistry()
	spec := serve.BuildSpec{
		Dataset: o.dataset, Rows: o.rows, Scale: o.scale, Seed: o.seed,
		Retry: serve.RetryPolicy{MaxAttempts: 3},
	}
	var tmpDir string
	if o.ingest {
		dir, err := os.MkdirTemp("", "prmload-store-*")
		if err != nil {
			log.Fatal(err)
		}
		tmpDir = dir
		st, err := store.Open(dir, 2)
		if err != nil {
			log.Fatal(err)
		}
		reg.UseStore(st)
		spec.Ingest = serve.IngestPolicy{Enabled: true, RefitRows: 4096, MaxPending: 1 << 20}
	}
	if _, err := reg.Add(o.model, spec); err != nil {
		log.Fatal(err)
	}
	srv := serve.NewServer(serve.Config{
		Registry:           reg,
		CacheCapacity:      o.cacheCapacity,
		RequestTimeout:     o.requestTimeout,
		JournalSampleEvery: o.journalSample,
		SLOLatency:         o.sloLatency,
		SLOLatencyTarget:   o.sloTarget,
		SLOWindows:         o.sloWindows,
		BrownoutTick:       o.brownoutTick,
		MemSoftLimit:       o.memSoftLimit,
		// Keep the in-process server's rebuild chatter and per-request log
		// lines out of the load report.
		Logf:   func(string, ...any) {},
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	cleanup := func() {
		srv.Close()
		if tmpDir != "" {
			os.RemoveAll(tmpDir)
		}
	}
	return srv, cleanup
}

// attachHealth embeds the server's post-run SLO and journal state in the
// report, so one artifact carries both sides: what the client measured
// and what the server believes about its own objectives.
func attachHealth(client *http.Client, base string, rep *report) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var body struct {
		SLO     json.RawMessage `json:"slo"`
		Journal json.RawMessage `json:"journal"`
	}
	if json.NewDecoder(resp.Body).Decode(&body) == nil {
		rep.SLO = body.SLO
		rep.Journal = body.Journal
	}
}

// burningObjectives extracts the names of objectives the server reports
// as burning from the raw healthz SLO block.
func burningObjectives(raw json.RawMessage) []string {
	var objs []struct {
		Name    string `json:"name"`
		Burning bool   `json:"burning"`
	}
	if raw == nil || json.Unmarshal(raw, &objs) != nil {
		return nil
	}
	var out []string
	for _, o := range objs {
		if o.Burning {
			out = append(out, o.Name)
		}
	}
	return out
}

func printReport(rep *report) {
	fmt.Printf("sent %d, completed %d in %.2fs — %.1f req/s achieved\n",
		rep.Sent, rep.Completed, rep.ElapsedSeconds, rep.AchievedQPS)
	fmt.Printf("errors: %d non-2xx, %d transport (rate %.4f)\n",
		rep.Non2xx, rep.TransportErrors, rep.ErrorRate)
	l := rep.Latency
	fmt.Printf("latency (schedule→completion, successes): p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		us(l.P50US), us(l.P90US), us(l.P99US), us(l.P999US), us(l.MaxUS))
	kinds := make([]string, 0, len(rep.ByKind))
	for k := range rep.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		s := rep.ByKind[k]
		fmt.Printf("  %-8s n=%-7d p50 %s  p99 %s\n", k, s.Count, us(s.P50US), us(s.P99US))
	}
	for _, name := range burningObjectives(rep.SLO) {
		fmt.Printf("server SLO burning: %s\n", name)
	}
}

func us(v int64) string { return time.Duration(v * int64(time.Microsecond)).String() }
