// Command prmgate is the cluster routing gateway: it spreads estimate
// traffic across a set of prmserved replicas with consistent-hash
// routing, health-checks them through /readyz, circuit-breaks replicas
// that fail, retries (and optionally hedges) idempotent requests, and
// orchestrates rolling rollout of model generations.
//
//	prmgate -addr :8090 -replicas http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//	curl -s localhost:8090/v1/estimate -d '{"model":"census","query":"FROM Census c WHERE c.Sex = sex0"}'
//	curl -s localhost:8090/v1/cluster | jq .
//	curl -s localhost:8090/v1/cluster/rollout -d '{"model":"census"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prmsel/internal/cluster"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("prmgate: ")
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated prmserved base URLs (required)")
	healthInterval := flag.Duration("health-interval", time.Second, "readiness poll period; the routing ring converges within one interval of a replica dying")
	healthTimeout := flag.Duration("health-timeout", 0, "per-check timeout (0 = the health interval)")
	downAfter := flag.Int("down-after", 1, "consecutive failed checks before a replica leaves the ring")
	upAfter := flag.Int("up-after", 1, "consecutive passing checks before a replica rejoins")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per replica on the consistent-hash ring")
	maxAttempts := flag.Int("max-attempts", 3, "total forwarding attempts per idempotent request, hedges included")
	retryBackoff := flag.Duration("retry-backoff", 25*time.Millisecond, "pause before re-forwarding after a transport failure (jittered)")
	hedgeAfter := flag.Duration("hedge-after", 0, "hedge idempotent requests to a second replica after this delay (0 = off)")
	quorum := flag.Int("quorum", 0, "replicas that must serve a generation before rollout promotes it (0 = majority)")
	forwardTimeout := flag.Duration("forward-timeout", 10*time.Second, "per-attempt forwarding timeout")
	drainGrace := flag.Duration("drain-grace", 0, "pause between flipping /readyz to 503 and closing the listener (0 = immediate)")
	flag.Parse()

	urls := make([]string, 0, 4)
	for _, u := range strings.Split(*replicas, ",") {
		u = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(u), "/"))
		if u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("-replicas is required (comma-separated base URLs)")
	}

	gate, err := cluster.NewGate(cluster.Config{
		Replicas:       urls,
		Client:         &http.Client{Timeout: *forwardTimeout},
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		DownAfter:      *downAfter,
		UpAfter:        *upAfter,
		VNodes:         *vnodes,
		MaxAttempts:    *maxAttempts,
		RetryBackoff:   *retryBackoff,
		HedgeAfter:     *hedgeAfter,
		Quorum:         *quorum,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	gate.Start()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gate.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * *forwardTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("routing to %d replicas on %s", len(urls), *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Mirror the replica shutdown sequence: not-ready first, grace for
	// whatever balances across gates, then drain in-flight forwards,
	// then stop the health loop and wait out background rollouts.
	gate.StartDrain()
	if *drainGrace > 0 {
		log.Printf("shutting down: not-ready on /readyz, waiting %v for upstreams", *drainGrace)
		time.Sleep(*drainGrace)
	}
	log.Print("shutting down: draining forwards")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "prmgate: shutdown: %v\n", err)
	}
	gate.Close()
	log.Print("shutdown complete")
}
