package prmsel

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBuildAndEstimateFig1(t *testing.T) {
	db := Fig1Example()
	model, err := Build(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Low-income home-owners: truth is 47 of 1000 (the paper's motivating
	// example, which AVI overestimates at ~162).
	q := NewQuery().Over("p", "People").
		WhereEq("p", "Income", 0).
		WhereEq("p", "HomeOwner", 1)
	truth, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth != 47 {
		t.Fatalf("truth = %d, want 47", truth)
	}
	est, err := model.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-47) > 3 {
		t.Errorf("PRM estimate = %v, want ≈47", est)
	}
	avi := NewAVI(db)
	aviEst, err := avi.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aviEst-161.68) > 0.5 {
		t.Errorf("AVI estimate = %v, want ≈161.7", aviEst)
	}
}

func TestBuildRespectsBudget(t *testing.T) {
	db := SyntheticCensus(5000, 9)
	for _, budget := range []int{1000, 3000} {
		model, err := Build(db, Config{BudgetBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		if model.StorageBytes() > budget {
			t.Errorf("budget %d: model uses %d bytes", budget, model.StorageBytes())
		}
	}
}

func TestJoinEstimation(t *testing.T) {
	db := SyntheticTB(0.15, 4)
	model, err := Build(db, Config{BudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().
		Over("c", "Contact").Over("p", "Patient").
		KeyJoin("c", "Patient", "p").
		WhereEq("p", "USBorn", 1)
	truth, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth == 0 {
		t.Skip("degenerate dataset")
	}
	if relErr := math.Abs(est-float64(truth)) / float64(truth); relErr > 0.25 {
		t.Errorf("join estimate %v vs truth %d (rel err %.2f)", est, truth, relErr)
	}

	uj, err := Build(db, Config{BudgetBytes: 4096, UniformJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uj.EstimateCount(q); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateSelectivityConsistency(t *testing.T) {
	db := Fig1Example()
	model, err := Build(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().Over("p", "People").WhereEq("p", "Education", 1)
	sel, err := model.EstimateSelectivity(q)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := model.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sel*1000-cnt) > 1e-9 {
		t.Errorf("selectivity %v inconsistent with count %v", sel, cnt)
	}
}

func TestTableAndTreeCPDs(t *testing.T) {
	db := Fig1Example()
	for _, kind := range []CPDKind{TreeCPDs, TableCPDs} {
		model, err := Build(db, Config{CPD: kind})
		if err != nil {
			t.Fatal(err)
		}
		if model.NumParams() == 0 {
			t.Errorf("%v: no parameters", kind)
		}
		if model.String() == "" {
			t.Errorf("%v: empty structure dump", kind)
		}
	}
}

func TestScoringRules(t *testing.T) {
	db := SyntheticCensus(3000, 11)
	for _, crit := range []Criterion{SSN, MDL, Naive} {
		if _, err := Build(db, Config{Scoring: crit, BudgetBytes: 2000}); err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
	}
}

func TestMHistFacade(t *testing.T) {
	db := SyntheticCensus(3000, 12)
	h, err := NewMHist(db.Table("Census"), []string{"Age", "Income"}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().Over("c", "Census").WhereEq("c", "Age", 5)
	if _, err := h.EstimateCount(q); err != nil {
		t.Fatal(err)
	}
	if h.StorageBytes() > 1000 {
		t.Errorf("MHIST over budget: %d", h.StorageBytes())
	}
}

func TestCSVRoundTripFacade(t *testing.T) {
	db := Fig1Example()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db.Table("People")); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDatabaseCSV(map[string]io.Reader{"People": &buf})
	if err != nil {
		t.Fatal(err)
	}
	if back.Table("People").Len() != 1000 {
		t.Errorf("round trip lost rows: %d", back.Table("People").Len())
	}
}

func TestSuiteEnumeration(t *testing.T) {
	s := Suite{
		Skeleton: NewQuery().Over("p", "People"),
		Targets:  []Target{{Var: "p", Attr: "Education"}, {Var: "p", Attr: "Income"}},
	}
	n := 0
	s.Enumerate([]int{3, 3}, func(q *Query) { n++ })
	if n != 9 {
		t.Errorf("enumerated %d queries, want 9", n)
	}
	if s.Size([]int{3, 3}) != 9 {
		t.Error("Size disagrees with Enumerate")
	}
}

func TestBuildOnHandConstructedDatabase(t *testing.T) {
	// Exercise the schema-construction API end to end.
	db := NewDatabase()
	team := NewTable(Schema{
		Name:       "Team",
		Attributes: []Attribute{{Name: "Division", Values: []string{"east", "west"}}},
	})
	team.MustAppendRow([]int32{0}, nil)
	team.MustAppendRow([]int32{1}, nil)
	player := NewTable(Schema{
		Name:        "Player",
		Attributes:  []Attribute{{Name: "Position", Values: []string{"guard", "center"}}},
		ForeignKeys: []ForeignKey{{Name: "Team", To: "Team"}},
	})
	for i := 0; i < 20; i++ {
		player.MustAppendRow([]int32{int32(i % 2)}, []int32{int32(i % 2)})
	}
	if err := db.AddTable(team); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(player); err != nil {
		t.Fatal(err)
	}
	model, err := Build(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().
		Over("pl", "Player").Over("tm", "Team").
		KeyJoin("pl", "Team", "tm").
		WhereEq("tm", "Division", 0)
	truth, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-float64(truth)) > 1 {
		t.Errorf("estimate %v vs truth %d", est, truth)
	}
}

func TestModelPersistence(t *testing.T) {
	db := SyntheticTB(0.1, 7)
	model, err := Build(db, Config{BudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().
		Over("c", "Contact").Over("p", "Patient").
		KeyJoin("c", "Patient", "p").
		WhereEq("c", "Contype", 0)
	a, _ := model.EstimateCount(q)
	b, err := back.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("estimates differ after persistence: %v vs %v", a, b)
	}
}

func TestModelMaintenance(t *testing.T) {
	old := SyntheticTB(0.1, 8)
	model, err := Build(old, Config{BudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	fresh := SyntheticTB(0.1, 9)
	before, err := model.LogLikelihood(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.RefitParameters(fresh); err != nil {
		t.Fatal(err)
	}
	after, err := model.LogLikelihood(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if after < before {
		t.Errorf("refit reduced the fresh-data score: %v -> %v", before, after)
	}
}

func TestModelGroupBy(t *testing.T) {
	db := SyntheticTB(0.1, 10)
	model, err := Build(db, Config{BudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().
		Over("c", "Contact").Over("p", "Patient").
		KeyJoin("c", "Patient", "p")
	groups, err := model.EstimateGroupBy(q, "c", "Contype")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 6 {
		t.Fatalf("groups = %d, want 6", len(groups))
	}
	var sum float64
	for _, g := range groups {
		sum += g
	}
	total, _ := model.EstimateCount(q)
	if math.Abs(sum-total) > 1e-6*math.Max(total, 1) {
		t.Errorf("groups sum %v != total %v", sum, total)
	}
}

func TestNonKeyJoinFacade(t *testing.T) {
	db := SyntheticTB(0.1, 11)
	model, err := Build(db, Config{BudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	// Contacts whose age bucket matches their patient's age bucket.
	q := NewQuery().
		Over("c", "Contact").Over("p", "Patient").
		NonKeyJoinOn("c", "Age", "p", "Age")
	truth, err := db.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if truth > 0 {
		relErr := math.Abs(est-float64(truth)) / float64(truth)
		if relErr > 0.3 {
			t.Errorf("non-key join estimate %v vs truth %d (rel err %.2f)", est, truth, relErr)
		}
	}
}

func TestDiscretizerFacade(t *testing.T) {
	values := []float64{1, 2, 3, 50, 51, 52, 99, 100}
	d, err := NewDiscretizer(values, 4, EquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	if d.Buckets() < 2 {
		t.Fatalf("buckets = %d", d.Buckets())
	}
	attr := d.Attribute("Salary")
	if attr.Card() != d.Buckets() {
		t.Error("attribute card mismatch")
	}
	if _, err := NewDiscretizer(nil, 2, EquiWidth); err == nil {
		t.Error("empty values accepted")
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	db := SyntheticTB(0.1, 14)
	serial, err := Build(db, Config{BudgetBytes: 3000})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Build(db, Config{BudgetBytes: 3000, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel build produced a different structure:\n%s\nvs\n%s", parallel, serial)
	}
}

func TestConcurrentEstimation(t *testing.T) {
	db := SyntheticTB(0.1, 15)
	model, err := Build(db, Config{BudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().
		Over("c", "Contact").Over("p", "Patient").
		KeyJoin("c", "Patient", "p").
		WhereEq("c", "Contype", 0)
	want, err := model.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Mix of shapes so cache misses and hits interleave.
				qq := q.Clone()
				if i%2 == 0 {
					qq.WhereEq("p", "USBorn", int32(g%2))
				}
				got, err := model.EstimateCount(qq)
				if err != nil {
					errs <- err
					return
				}
				if i%2 != 0 && got != want {
					errs <- fmt.Errorf("concurrent estimate %v != %v", got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestExplainFacade(t *testing.T) {
	db := SyntheticTB(0.1, 16)
	model, err := Build(db, Config{BudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().Over("c", "Contact").WhereEq("c", "Contype", 0)
	ex, err := model.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.EstimateCount(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.Estimate-est) > 1e-9 {
		t.Errorf("Explain estimate %v != EstimateCount %v", ex.Estimate, est)
	}
	if len(ex.TupleVars) < 1 {
		t.Error("explanation has no tuple variables")
	}
}

func TestRenderCPDsFacade(t *testing.T) {
	db := Fig1Example()
	model, err := Build(db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := model.RenderCPDs()
	for _, want := range []string{"People.Education:", "People.Income:", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderCPDs missing %q in:\n%s", want, out)
		}
	}
}

func TestPlanFacade(t *testing.T) {
	db := SyntheticTB(0.15, 17)
	model, err := Build(db, Config{BudgetBytes: 4400})
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery().
		Over("c", "Contact").Over("p", "Patient").Over("s", "Strain").
		KeyJoin("c", "Patient", "p").
		KeyJoin("p", "Strain", "s").
		Where("p", "Age", 6, 7).
		WhereEq("c", "Contype", 3)
	plan, err := ChoosePlan(q, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Order) != 3 {
		t.Fatalf("plan order = %v", plan.Order)
	}
	cost, err := TruePlanCost(db, q, plan.Order)
	if err != nil {
		t.Fatal(err)
	}
	optimal, err := OptimalPlan(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if cost < optimal.EstCost {
		t.Errorf("true cost %v below the optimum %v — cost accounting broken", cost, optimal.EstCost)
	}
}
