// Package prmsel estimates the result sizes of select and foreign-key-join
// queries over relational data using probabilistic models, reproducing
// Getoor, Taskar & Koller, "Selectivity Estimation using Probabilistic
// Models" (SIGMOD 2001).
//
// The workflow has two phases. Offline, Build learns a Probabilistic
// Relational Model (PRM) from a Database: a Bayesian network over every
// table's attributes, extended with per-foreign-key join indicator
// variables that capture join skew and with cross-table dependencies.
// Online, Model.EstimateCount answers any conjunctive equality/range
// select with foreign-key joins — the model is not specialized to a
// predetermined workload.
//
//	db := prmsel.SyntheticCensus(150000, 1)
//	model, _ := prmsel.Build(db, prmsel.Config{BudgetBytes: 4096})
//	q := prmsel.NewQuery().Over("c", "Census").
//		WhereEq("c", "Income", 30).
//		WhereEq("c", "Age", 7)
//	est, _ := model.EstimateCount(q)
//
// The baseline estimators the paper compares against (AVI, MHIST, SAMPLE,
// BN+UJ) are exposed through the same Estimator interface, and the exact
// executor (Database.Count) provides ground truth.
package prmsel

import (
	"context"
	"fmt"
	"io"
	"strings"

	"prmsel/internal/baselines"
	"prmsel/internal/core"
	"prmsel/internal/datagen"
	"prmsel/internal/dataset"
	"prmsel/internal/discretize"
	"prmsel/internal/learn"
	"prmsel/internal/optimizer"
	"prmsel/internal/query"
)

// Relational substrate. A Database is a set of columnar tables with
// categorical attributes and row-index foreign keys; see the dataset
// documentation for the construction API.
type (
	// Database is an in-memory relational database closed under foreign
	// keys.
	Database = dataset.Database
	// Table is one columnar table.
	Table = dataset.Table
	// Schema declares a table's attributes and foreign keys.
	Schema = dataset.Schema
	// Attribute is a categorical value attribute.
	Attribute = dataset.Attribute
	// ForeignKey declares a reference to another table.
	ForeignKey = dataset.ForeignKey
)

// NewDatabase returns an empty database.
func NewDatabase() *Database { return dataset.NewDatabase() }

// NewTable returns an empty table with the given schema.
func NewTable(s Schema) *Table { return dataset.NewTable(s) }

// ReadDatabaseCSV loads a database from per-table CSV readers (see
// dataset.ReadDatabaseCSV for the layout).
func ReadDatabaseCSV(files map[string]io.Reader) (*Database, error) {
	return dataset.ReadDatabaseCSV(files)
}

// WriteCSV writes one table in the CSV layout ReadDatabaseCSV accepts.
func WriteCSV(w io.Writer, t *Table) error { return dataset.WriteCSV(w, t) }

// Query model.
type (
	// Query is a conjunctive select/keyjoin query built with Over, Where,
	// WhereEq and KeyJoin.
	Query = query.Query
	// Target names one queried attribute of one tuple variable.
	Target = query.Target
	// Suite enumerates a family of queries over fixed targets.
	Suite = query.Suite
)

// NewQuery returns an empty query for chaining.
func NewQuery() *Query { return query.New() }

// CPDKind selects the representation of conditional probability
// distributions in learned models.
type CPDKind = learn.CPDKind

// CPD representation choices.
const (
	// TreeCPDs share parameters across parent contexts (the paper's
	// default; more accurate per byte).
	TreeCPDs = learn.Tree
	// TableCPDs store one distribution per parent configuration.
	TableCPDs = learn.Table
)

// Criterion selects the structure-search step-ranking rule.
type Criterion = learn.Criterion

// Structure-search scoring rules (paper §4.3.3).
const (
	// SSN ranks steps by likelihood gain per byte (the default and the
	// paper's best performer together with MDL).
	SSN = learn.SSN
	// MDL ranks steps by minimum-description-length gain.
	MDL = learn.MDL
	// Naive ranks steps by raw likelihood gain.
	Naive = learn.Naive
)

// Config tunes Build.
type Config struct {
	// CPD is the CPD representation; TreeCPDs by default.
	CPD CPDKind
	// Scoring is the search step-ranking rule; SSN by default.
	Scoring Criterion
	// BudgetBytes bounds the model's storage; 0 means unlimited.
	BudgetBytes int
	// MaxParents bounds each variable's parent count; 0 means the default
	// of 4.
	MaxParents int
	// UniformJoin learns the BN+UJ baseline: independent per-table
	// networks with every join assumed uniform.
	UniformJoin bool
	// TopKCandidates, when positive, prunes each attribute's candidate
	// parents to the K most informative by a single-pass pairwise
	// mutual-information prescan, trading a little accuracy for faster
	// construction on wide tables.
	TopKCandidates int
	// Workers parallelizes candidate evaluation during construction across
	// goroutines without changing the learned model. 0 or 1 means serial.
	Workers int
	// RandomSteps is the number of random escape steps the search may take
	// after hitting a local maximum.
	RandomSteps int
	// Seed drives the random escape steps.
	Seed int64
}

// Model is a learned PRM ready to answer selectivity queries. A Model is
// safe for concurrent estimation once built.
type Model struct {
	prm *core.PRM
}

// Build learns a model from the database (the paper's offline phase):
// maximum-likelihood CPDs from sufficient statistics, and greedy
// hill-climbing structure search under the byte budget.
func Build(db *Database, cfg Config) (*Model, error) {
	maxParents := cfg.MaxParents
	if maxParents == 0 {
		maxParents = 4
	}
	m, err := core.Learn(db, core.Config{
		Fit: learn.FitConfig{Kind: cfg.CPD, TopKCandidates: cfg.TopKCandidates},
		Search: learn.Options{
			Criterion:   cfg.Scoring,
			BudgetBytes: cfg.BudgetBytes,
			MaxParents:  maxParents,
			RandomSteps: cfg.RandomSteps,
			Seed:        cfg.Seed,
			Workers:     cfg.Workers,
		},
		UniformJoin: cfg.UniformJoin,
	})
	if err != nil {
		return nil, err
	}
	return &Model{prm: m}, nil
}

// EstimateCount estimates the result size of q (the paper's online phase).
func (m *Model) EstimateCount(q *Query) (float64, error) { return m.prm.EstimateCount(q) }

// EstimateCountCtx is EstimateCount under a context: a span-carrying
// context (internal/obs via Trace helpers) records the estimate as a span
// tree, and cancellation stops inference between elimination steps.
func (m *Model) EstimateCountCtx(ctx context.Context, q *Query) (float64, error) {
	return m.prm.EstimateCountCtx(ctx, q)
}

// EstimateSelectivity estimates q's selectivity relative to the cross
// product of its tables.
func (m *Model) EstimateSelectivity(q *Query) (float64, error) {
	return m.prm.EstimateSelectivity(q)
}

// EstimateOptions tunes EstimateCountFallback's degradation chain.
type EstimateOptions = core.EstimateOptions

// EstimateResult is an estimate annotated with the degradation tier that
// produced it.
type EstimateResult = core.EstimateResult

// EstimateCountFallback estimates q through the graceful-degradation
// chain: exact elimination under opts.Budget, falling back to
// likelihood-weighting sampling when elimination is over budget or fails.
// The result records which tier answered and why the chain degraded.
func (m *Model) EstimateCountFallback(ctx context.Context, q *Query, opts EstimateOptions) (EstimateResult, error) {
	return m.prm.EstimateCountFallback(ctx, q, opts)
}

// StorageBytes reports the model's storage cost under the evaluation's
// byte accounting.
func (m *Model) StorageBytes() int { return m.prm.StorageBytes() }

// NumParams reports the model's free-parameter count.
func (m *Model) NumParams() int { return m.prm.NumParams() }

// String renders the learned dependency structure.
func (m *Model) String() string { return m.prm.String() }

// Name implements Estimator.
func (m *Model) Name() string { return "PRM" }

// Encode writes the model in gob form so it can be persisted and later
// reloaded with LoadModel.
func (m *Model) Encode(w io.Writer) error { return m.prm.Encode(w) }

// LoadModel reads a model previously written by Model.Encode.
func LoadModel(r io.Reader) (*Model, error) {
	prm, err := core.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Model{prm: prm}, nil
}

// RefitParameters re-estimates the model's parameters from db with the
// dependency structure kept fixed — the cheap maintenance step for an
// evolving database (paper §6).
func (m *Model) RefitParameters(db *Database) error { return m.prm.RefitParameters(db) }

// LogLikelihood scores db under the model's current parameters; a falling
// score signals drift that warrants a full rebuild (paper §6).
func (m *Model) LogLikelihood(db *Database) (float64, error) { return m.prm.LogLikelihood(db) }

// EstimateGroupBy approximately answers SELECT attr, COUNT(*) … GROUP BY
// attr for the query, returning one estimate per value code of tv's
// attribute.
func (m *Model) EstimateGroupBy(q *Query, tv, attr string) ([]float64, error) {
	return m.prm.EstimateGroupBy(q, tv, attr)
}

var _ Estimator = (*Model)(nil)

// Estimator is the contract shared by the PRM and every baseline.
type Estimator = baselines.Estimator

// NewAVI builds the attribute-value-independence baseline over db.
func NewAVI(db *Database) Estimator { return baselines.NewAVI(db) }

// NewMHist builds a multidimensional V-Optimal(V,A) histogram over the
// named attributes of t within budgetBytes.
func NewMHist(t *Table, attrs []string, budgetBytes int) (Estimator, error) {
	return baselines.NewMHist(t, attrs, budgetBytes)
}

// Discretization (paper §2.3) for large or continuous domains.
type (
	// Discretizer maps continuous values onto bucket codes.
	Discretizer = discretize.Discretizer
	// DiscretizeMethod selects the bucketing strategy.
	DiscretizeMethod = discretize.Method
)

// Bucketing strategies.
const (
	// EquiWidth splits the value range into equal-width buckets.
	EquiWidth = discretize.EquiWidth
	// EquiDepth splits at quantiles for roughly equal bucket counts.
	EquiDepth = discretize.EquiDepth
)

// NewDiscretizer fits a discretizer to the observed values.
func NewDiscretizer(values []float64, buckets int, method DiscretizeMethod) (*Discretizer, error) {
	return discretize.New(values, buckets, method)
}

// Synthetic datasets standing in for the paper's evaluation data (see
// DESIGN.md for the substitution rationale).

// SyntheticCensus generates the single-table census database (n rows).
func SyntheticCensus(n int, seed int64) *Database { return datagen.Census(n, seed) }

// SyntheticTB generates the three-table tuberculosis database at the given
// scale (1.0 reproduces the paper's table sizes).
func SyntheticTB(scale float64, seed int64) *Database { return datagen.TB(scale, seed) }

// SyntheticFIN generates the three-table financial database at the given
// scale (1.0 reproduces the paper's table sizes).
func SyntheticFIN(scale float64, seed int64) *Database { return datagen.FIN(scale, seed) }

// SyntheticShop generates a four-level retail database (LineItem → Order →
// Customer → Region) for exercising multi-hop foreign-key chains.
func SyntheticShop(scale float64, seed int64) *Database { return datagen.Shop(scale, seed) }

// Fig1Example returns the 1000-row education/income/home-owner table whose
// joint distribution is exactly the paper's Figure 1(a).
func Fig1Example() *Database { return datagen.Fig1Example() }

// Join-order optimization — the paper's motivating application. A Plan is
// a left-deep join order costed by the sum of estimated intermediate
// result sizes.
type Plan = optimizer.Plan

// ChoosePlan picks the cheapest left-deep join order for q under the given
// estimator's intermediate-size estimates.
func ChoosePlan(q *Query, est Estimator) (*Plan, error) { return optimizer.Choose(q, est) }

// TruePlanCost evaluates a join order's actual cost (sum of exact
// intermediate sizes).
func TruePlanCost(db *Database, q *Query, order []string) (float64, error) {
	return optimizer.TrueCost(db, q, order)
}

// OptimalPlan returns the join order with the lowest true cost.
func OptimalPlan(db *Database, q *Query) (*Plan, error) { return optimizer.OptimalOrder(db, q) }

// RenderCPDs pretty-prints every variable's conditional probability
// distribution — tree CPDs as decision trees, table CPDs per
// configuration.
func (m *Model) RenderCPDs() string {
	var b strings.Builder
	for id := 0; id < m.prm.NumVars(); id++ {
		fmt.Fprintf(&b, "%s:\n", m.prm.Var(id).Name())
		for _, line := range strings.Split(strings.TrimRight(m.prm.RenderCPD(id), "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Explanation reports how an estimate was assembled: the upward closure's
// tuple variables, the event probability, and the size scaling.
type Explanation = core.Explanation

// Explain estimates q and reports the closure, probability and scaling
// behind the number.
func (m *Model) Explain(q *Query) (*Explanation, error) { return m.prm.Explain(q) }
