package prmsel

// One benchmark per figure of the paper's evaluation (Section 5; the
// evaluation has no numbered tables — Figures 4–7 are the complete set),
// plus micro-benchmarks for the two phases (construction, estimation) and
// ablation benchmarks for the design choices DESIGN.md calls out. The
// benchmarks run on reduced dataset sizes so `go test -bench=.` completes
// in minutes; cmd/prmbench regenerates the figures at paper scale.

import (
	"sync"
	"testing"

	"prmsel/internal/bayesnet"
	"prmsel/internal/datagen"
	"prmsel/internal/dataset"
	"prmsel/internal/eval"
	"prmsel/internal/learn"
	"prmsel/internal/query"
)

var (
	benchOnce     sync.Once
	benchCensus   *dataset.Database
	benchTB       *dataset.Database
	benchFIN      *dataset.Database
	benchQueryOpt = eval.Options{MaxQueries: 300, Seed: 1}
)

func benchData() (*dataset.Database, *dataset.Database, *dataset.Database) {
	benchOnce.Do(func() {
		benchCensus = datagen.Census(10000, 1)
		benchTB = datagen.TB(0.15, 2)
		benchFIN = datagen.FIN(0.1, 3)
	})
	return benchCensus, benchTB, benchFIN
}

func benchFigure(b *testing.B, run func() (*eval.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if fig != nil && len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig4a(b *testing.B) {
	census, _, _ := benchData()
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig4(census, "4a", []string{"Age", "Income"}, []int{400, 800, 1200}, benchQueryOpt)
	})
}

func BenchmarkFig4b(b *testing.B) {
	census, _, _ := benchData()
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig4(census, "4b", []string{"Age", "HoursPerWeek", "Income"}, []int{1500, 3500}, benchQueryOpt)
	})
}

func BenchmarkFig4c(b *testing.B) {
	census, _, _ := benchData()
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig4(census, "4c", []string{"Age", "Education", "HoursPerWeek", "Income"}, []int{1500, 5500}, benchQueryOpt)
	})
}

func BenchmarkFig5a(b *testing.B) {
	census, _, _ := benchData()
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig5(census, "5a", []string{"WorkerClass", "Education", "MaritalStatus"}, []int{1500, 4500}, benchQueryOpt)
	})
}

func BenchmarkFig5b(b *testing.B) {
	census, _, _ := benchData()
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig5(census, "5b", []string{"Income", "Industry", "Age", "EmployType"}, []int{1500, 9500}, benchQueryOpt)
	})
}

func BenchmarkFig5c(b *testing.B) {
	census, _, _ := benchData()
	for i := 0; i < b.N; i++ {
		points, err := eval.Fig5c(census, []string{"Income", "Industry", "Age"}, 9300, benchQueryOpt)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no scatter points")
		}
	}
}

var tbTargets = []query.Target{
	{Var: "c", Attr: "Contype"},
	{Var: "p", Attr: "Age"},
	{Var: "s", Attr: "DrugResistant"},
}

func BenchmarkFig6a(b *testing.B) {
	_, tb, _ := benchData()
	w := eval.TBWorkload(tb)
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig6a(w, tbTargets, []int{1300, 4300}, benchQueryOpt)
	})
}

func BenchmarkFig6b(b *testing.B) {
	_, tb, _ := benchData()
	w := eval.TBWorkload(tb)
	suites := [][]query.Target{
		{{Var: "c", Attr: "Contype"}, {Var: "p", Attr: "Age"}},
		{{Var: "p", Attr: "HIV"}, {Var: "s", Attr: "Unique"}},
		{{Var: "c", Attr: "Infected"}, {Var: "p", Attr: "USBorn"}, {Var: "s", Attr: "DrugResistant"}},
	}
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig6Sets("6b", w, suites, 4400, benchQueryOpt)
	})
}

func BenchmarkFig6c(b *testing.B) {
	_, _, fin := benchData()
	w := eval.FINWorkload(fin)
	suites := [][]query.Target{
		{{Var: "t", Attr: "Type"}, {Var: "a", Attr: "Balance"}},
		{{Var: "t", Attr: "Amount"}, {Var: "a", Attr: "Frequency"}, {Var: "d", Attr: "AvgSalary"}},
		{{Var: "t", Attr: "Channel"}, {Var: "a", Attr: "CardType"}, {Var: "d", Attr: "Urban"}},
	}
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig6Sets("6c", w, suites, 2000, benchQueryOpt)
	})
}

func BenchmarkFig7a(b *testing.B) {
	census, _, _ := benchData()
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig7a(census, []int{500, 4500, 8500}, benchQueryOpt)
	})
}

func BenchmarkFig7b(b *testing.B) {
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig7b([]int{4000, 16000}, 3500, benchQueryOpt)
	})
}

func BenchmarkFig7c(b *testing.B) {
	census, _, _ := benchData()
	benchFigure(b, func() (*eval.Figure, error) {
		return eval.Fig7c(census, []int{1000, 5000, 9000}, []string{"WorkerClass", "Education", "MaritalStatus"}, benchQueryOpt)
	})
}

// Construction micro-benchmarks (the offline phase, Fig 7a/b's subject).

func benchConstruct(b *testing.B, kind CPDKind) {
	census, _, _ := benchData()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(census, Config{CPD: kind, BudgetBytes: 3500}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructTree(b *testing.B)  { benchConstruct(b, TreeCPDs) }
func BenchmarkConstructTable(b *testing.B) { benchConstruct(b, TableCPDs) }

// Estimation micro-benchmarks (the online phase, Fig 7c's subject).

func benchEstimate(b *testing.B, kind CPDKind) {
	census, _, _ := benchData()
	model, err := Build(census, Config{CPD: kind, BudgetBytes: 3500})
	if err != nil {
		b.Fatal(err)
	}
	q := NewQuery().Over("c", "Census").
		WhereEq("c", "WorkerClass", 2).
		WhereEq("c", "Education", 8).
		WhereEq("c", "MaritalStatus", 0)
	if _, err := model.EstimateCount(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.EstimateCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateTree(b *testing.B)  { benchEstimate(b, TreeCPDs) }
func BenchmarkEstimateTable(b *testing.B) { benchEstimate(b, TableCPDs) }

func BenchmarkEstimateJoin(b *testing.B) {
	_, tb, _ := benchData()
	model, err := Build(tb, Config{BudgetBytes: 4400})
	if err != nil {
		b.Fatal(err)
	}
	q := NewQuery().
		Over("c", "Contact").Over("p", "Patient").Over("s", "Strain").
		KeyJoin("c", "Patient", "p").
		KeyJoin("p", "Strain", "s").
		WhereEq("c", "Contype", 3).
		Where("p", "Age", 6, 7).
		WhereEq("s", "Unique", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.EstimateCount(q); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations (DESIGN.md §5).

// BenchmarkAblationScoring compares the three step-selection rules of
// §4.3.3 at a fixed budget.
func BenchmarkAblationScoring(b *testing.B) {
	census, _, _ := benchData()
	for _, crit := range []Criterion{SSN, MDL, Naive} {
		b.Run(crit.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(census, Config{Scoring: crit, BudgetBytes: 3000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCPDKind compares tree vs table CPDs end to end
// (construction plus a small suite).
func BenchmarkAblationCPDKind(b *testing.B) {
	census, _, _ := benchData()
	suite := query.Suite{
		Skeleton: query.New().Over("t", "Census"),
		Targets:  []query.Target{{Var: "t", Attr: "Education"}, {Var: "t", Attr: "Income"}},
	}
	for _, kind := range []CPDKind{TreeCPDs, TableCPDs} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := eval.LearnPRM(census, "PRM", eval.LearnOptions{Kind: kind, Criterion: SSN, Budget: 3500})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eval.RunSuite(census, est, suite, 200); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationElimOrder compares min-fill vs reverse-topological
// variable elimination inside estimation.
func BenchmarkAblationElimOrder(b *testing.B) {
	census, _, _ := benchData()
	model, err := Build(census, Config{BudgetBytes: 6000})
	if err != nil {
		b.Fatal(err)
	}
	// Reach inside via the estimator path: elimination order is exercised
	// by the range query below, which keeps several dimensions alive.
	q := NewQuery().Over("c", "Census").
		Where("c", "Income", 20, 21, 22, 23, 24, 25).
		Where("c", "Age", 5, 6, 7).
		WhereEq("c", "Children", 1)
	b.Run("minfill-rangequery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.EstimateCount(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPruning measures the single-pass MI candidate-pruning
// speedup (the paper's future-work "home in on candidate models" idea).
func BenchmarkAblationPruning(b *testing.B) {
	census, _, _ := benchData()
	for _, topK := range []int{0, 3} {
		name := "full"
		if topK > 0 {
			name = "top3"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(census, Config{BudgetBytes: 3500, TopKCandidates: topK}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInference compares the two exact inference engines —
// per-query variable elimination vs the compiled junction tree — on a
// learned census network.
func BenchmarkAblationInference(b *testing.B) {
	census, _, _ := benchData()
	tbl := census.Table("Census")
	// MaxParents keeps the treewidth low enough for the junction tree's
	// clique-size guard; without it the census net triangulates into a
	// billions-of-cells clique and only variable elimination applies.
	net, _, err := learn.LearnBN(tbl, learn.FitConfig{Kind: learn.Tree},
		learn.Options{Criterion: learn.SSN, BudgetBytes: 6000, MaxParents: 2})
	if err != nil {
		b.Fatal(err)
	}
	evt := bayesnet.Event{
		net.VarByName("WorkerClass"):   {2},
		net.VarByName("Education"):     {8},
		net.VarByName("MaritalStatus"): {0},
	}
	b.Run("variable-elimination", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := net.Probability(evt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("junction-tree", func(b *testing.B) {
		jt, err := net.CompileJunctionTree()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := jt.Probability(evt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
